#ifndef LAFP_LAZY_SESSION_H_
#define LAFP_LAZY_SESSION_H_

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/trace.h"
#include "exec/backend.h"
#include "lazy/result_cache.h"
#include "lazy/scheduler.h"
#include "lazy/task_graph.h"

namespace lafp::lazy {

/// How statements execute. kLazy is the LaFP mode (build a task graph,
/// optimize, execute on demand); kEager reproduces plain Pandas/Modin
/// semantics: every API call materializes immediately.
enum class ExecutionMode : int { kLazy = 0, kEager = 1 };

/// Unified execution tuning (the single home for threading knobs). The
/// same worker count drives graph-level scheduling and the Modin
/// backend's partition parallelism, replacing the old split where
/// BackendConfig::num_threads only meant "Modin workers".
struct ExecutionOptions {
  /// Worker threads for the parallel DAG scheduler and backend partition
  /// parallelism. 0 = inherit the legacy BackendConfig::num_threads knob
  /// (so aggregate-initialized SessionOptions keep their old meaning);
  /// 1 = serial scheduling.
  int num_threads = 0;
  /// Collect per-node statistics into Session::last_report(). Cheap
  /// (microseconds per node); disable for benchmark inner loops.
  bool collect_stats = true;
  /// Force the deterministic serial reference scheduler even when
  /// num_threads > 1 (debugging / A-B testing aid). Lazy backends (Dask)
  /// always schedule serially: their Execute() is cheap plan recording,
  /// and plan caches are not synchronized.
  bool serial_scheduler = false;
  /// Morsel-driven parallelism *inside* individual kernels (the
  /// intra-operator axis, orthogonal to num_threads' inter-operator /
  /// partition axis). 0 = off (kernels run their legacy sequential loops,
  /// byte-for-byte); 1 = serial execution over the fixed morsel geometry;
  /// >1 = morsel-parallel on the backend's kernel pool. Because morsel
  /// boundaries depend only on row count and morsel_rows, every value
  /// >= 1 yields bit-identical results. 0 inherits the
  /// BackendConfig::intra_op_threads knob, mirroring num_threads.
  int intra_op_threads = 0;
  /// Rows per kernel morsel when intra_op_threads >= 1. Part of the
  /// determinism contract: changing it changes morsel boundaries (and may
  /// perturb compensated sums by ~1 ulp); changing thread counts never
  /// does.
  size_t morsel_rows = 65536;
  /// Graceful degradation (§4.3/§5.2): when a backend's native Execute
  /// fails with an execution / IO / not-implemented error, retry the node
  /// once on the eager Pandas-engine fallback path instead of failing the
  /// round. Out-of-memory and semantic errors (KeyError/TypeError
  /// analogues) always surface — those are program errors, not backend
  /// limitations.
  bool graceful_fallback = true;
  /// Enable the structured tracer (common/trace.h) for this session:
  /// session/round/pass/node/kernel spans are recorded into the global
  /// tracer for Chrome-JSON or EXPLAIN ANALYZE export. Independent of the
  /// LAFP_TRACE env knob (either can switch the tracer on).
  bool trace = false;
  /// External cancellation token checked by the scheduler between nodes
  /// (common/cancellation.h). Non-owning, must outlive the session; null
  /// = rounds cancel only on internal failure. A query server trips this
  /// when the client disconnects, so an abandoned request stops burning
  /// workers at its next node boundary.
  CancellationToken* cancel = nullptr;
  /// Non-owning DAG-scheduler worker pool shared across sessions. Null =
  /// the session lazily builds a private pool (the single-session
  /// default). A query server owns one pool and hands it to every
  /// session so N concurrent sessions multiplex a fixed worker set
  /// instead of stacking N private pools. Must outlive the session.
  ThreadPool* scheduler_pool = nullptr;

  /// Fully resolved execution knobs — every zero-means-inherit default
  /// collapsed to a concrete value.
  struct Resolved {
    int num_threads = 1;       // always >= 1
    int intra_op_threads = 0;  // always >= 0 (0 = morsel machinery off)
    size_t morsel_rows = 65536;
  };

  /// Resolution order (the single home for knob inheritance — nothing
  /// else in the runtime may interpret a 0):
  ///  1. an explicit ExecutionOptions knob (> 0) wins;
  ///  2. otherwise the legacy BackendConfig knob applies (so
  ///     aggregate-initialized SessionOptions keep their old meaning);
  ///  3. the result is clamped: num_threads >= 1, intra_op_threads >= 0;
  ///  4. morsel_rows always comes from ExecutionOptions (it has a real
  ///     default, not an inherit sentinel).
  Resolved Resolve(const exec::BackendConfig& legacy) const;
};

struct SessionOptions {
  exec::BackendKind backend = exec::BackendKind::kPandas;
  exec::BackendConfig backend_config;
  /// Non-owning; Default() when null. Must outlive the session.
  MemoryTracker* tracker = nullptr;
  ExecutionMode mode = ExecutionMode::kLazy;
  /// LaFP lazy print (§3.3). When false (plain lazy frameworks), print
  /// forces computation immediately.
  bool lazy_print = true;
  /// Destination for print output; std::cout when null. Tests inject a
  /// stringstream; the regression harness hashes it.
  std::ostream* output = nullptr;
  /// Fault-injection specs armed for the session's lifetime (LAFP_FAULTS
  /// grammar, see common/fault.h). The session owns a *private*
  /// FaultInjector installed as the thread-current injector around its
  /// execution paths (and propagated into pool tasks by
  /// ThreadPool::Submit), so concurrent sessions with different fault
  /// configs never stomp the process-global registry. Empty = the
  /// Global() registry (LAFP_FAULTS) applies. A malformed string fails
  /// the session's first execution round.
  std::string fault_config;
  /// Scheduler / threading knobs (see ExecutionOptions).
  ExecutionOptions exec;
  /// Cross-query plan/result cache (lazy/result_cache.h). Disabled by
  /// default; the LAFP_CACHE env knob can still attach the process-wide
  /// shared cache when this config is untouched.
  CacheConfig cache;

  class Builder;
};

/// Fluent construction of SessionOptions:
///   SessionOptions::Builder().backend(kModin).threads(8)
///       .lazy_print(false).Build()
/// The plain aggregate-init path keeps working; the builder is the
/// recommended surface because `threads()` sets the unified knob in one
/// place.
class SessionOptions::Builder {
 public:
  Builder() = default;

  Builder& backend(exec::BackendKind kind) {
    opts_.backend = kind;
    return *this;
  }
  Builder& backend_config(exec::BackendConfig config) {
    opts_.backend_config = std::move(config);
    return *this;
  }
  /// Unified worker count: DAG scheduler + backend partitions.
  Builder& threads(int n) {
    opts_.exec.num_threads = n;
    return *this;
  }
  Builder& partition_rows(size_t rows) {
    opts_.backend_config.partition_rows = rows;
    return *this;
  }
  /// Intra-operator (morsel) parallelism inside kernels; see
  /// ExecutionOptions::intra_op_threads.
  Builder& intra_op_threads(int n) {
    opts_.exec.intra_op_threads = n;
    return *this;
  }
  Builder& morsel_rows(size_t rows) {
    opts_.exec.morsel_rows = rows;
    return *this;
  }
  Builder& task_overhead_us(int64_t us) {
    opts_.backend_config.task_overhead_us = us;
    return *this;
  }
  Builder& spill_dir(std::string dir) {
    opts_.backend_config.spill_dir = std::move(dir);
    return *this;
  }
  Builder& mode(ExecutionMode m) {
    opts_.mode = m;
    return *this;
  }
  Builder& eager() { return mode(ExecutionMode::kEager); }
  Builder& lazy_print(bool on) {
    opts_.lazy_print = on;
    return *this;
  }
  Builder& collect_stats(bool on) {
    opts_.exec.collect_stats = on;
    return *this;
  }
  Builder& serial_scheduler(bool on) {
    opts_.exec.serial_scheduler = on;
    return *this;
  }
  /// Arm fault-injection specs for the session (LAFP_FAULTS grammar).
  Builder& faults(std::string config) {
    opts_.fault_config = std::move(config);
    return *this;
  }
  Builder& graceful_fallback(bool on) {
    opts_.exec.graceful_fallback = on;
    return *this;
  }
  /// Enable structured tracing (spans into trace::Tracer::Global()).
  Builder& trace(bool on) {
    opts_.exec.trace = on;
    return *this;
  }
  /// External cancellation token (non-owning; see ExecutionOptions).
  Builder& cancel(CancellationToken* token) {
    opts_.exec.cancel = token;
    return *this;
  }
  /// Shared DAG-scheduler pool (non-owning; see ExecutionOptions).
  Builder& scheduler_pool(ThreadPool* pool) {
    opts_.exec.scheduler_pool = pool;
    return *this;
  }
  /// Shared-nothing multi-process execution: selects the shard backend
  /// with `n` forked worker processes (1 is a valid degenerate cluster;
  /// results are byte-identical for any n). 0 defers the count to the
  /// LAFP_SHARDS env knob, defaulting to 2.
  Builder& shards(int n) {
    opts_.backend = exec::BackendKind::kShard;
    opts_.backend_config.shards = n;
    return *this;
  }
  /// Shared backend worker pool (non-owning; see
  /// exec::BackendConfig::shared_pool).
  Builder& backend_pool(ThreadPool* pool) {
    opts_.backend_config.shared_pool = pool;
    return *this;
  }
  Builder& spill_fallback_dir(std::string dir) {
    opts_.backend_config.spill_fallback_dir = std::move(dir);
    return *this;
  }
  /// Enable (or disable) the cross-query result cache. With no explicit
  /// instance the session builds a private cache charged to the
  /// session's MemoryTracker.
  Builder& cache(bool on) {
    opts_.cache.enabled = on;
    return *this;
  }
  /// Share an existing cache instance across sessions (implies enabled).
  Builder& cache(std::shared_ptr<ResultCache> c) {
    opts_.cache.enabled = true;
    opts_.cache.cache = std::move(c);
    return *this;
  }
  /// Capacity for the session-private cache (implies enabled).
  Builder& cache_bytes(size_t bytes) {
    opts_.cache.enabled = true;
    opts_.cache.capacity_bytes = bytes;
    return *this;
  }
  Builder& tracker(MemoryTracker* t) {
    opts_.tracker = t;
    return *this;
  }
  Builder& output(std::ostream* os) {
    opts_.output = os;
    return *this;
  }

  SessionOptions Build() const { return opts_; }

 private:
  SessionOptions opts_;
};

class Session;

/// Signature of a function-backed optimizer pass (see MakeFunctionPass).
using OptimizerPassFn =
    std::function<Status(Session* session,
                         const std::vector<TaskNodePtr>& roots,
                         const std::vector<TaskNodePtr>& live)>;

/// A named graph-rewriting pass run before each execution round.
/// Registered passes run in registration order; each round's
/// ExecutionReport lists them by name with per-pass wall time. Passes run
/// on the round's calling thread, before any node executes, so they may
/// freely mutate the reachable task graph (the contract the optimizer
/// module's passes already rely on).
class OptimizerPass {
 public:
  virtual ~OptimizerPass() = default;
  virtual const std::string& name() const = 0;
  virtual Status Run(Session* session, const std::vector<TaskNodePtr>& roots,
                     const std::vector<TaskNodePtr>& live) = 0;
};

/// Placeholder markers inside a print template: "\x01<input index>\x02".
std::string PrintPlaceholder(size_t input_index);

/// The LaFP runtime: owns the task graph, the backend, the pending lazy
/// prints, and the execution engine with result clearing (paper §2.5-2.6,
/// §3.3, §3.5). Rounds execute through the parallel DAG scheduler
/// (lazy/scheduler.h) when the unified thread knob is > 1 and the backend
/// is eager; otherwise through the serial reference path.
class Session {
 public:
  explicit Session(SessionOptions options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  TaskGraph* graph() { return &graph_; }
  exec::Backend* backend() { return backend_.get(); }
  MemoryTracker* tracker() { return tracker_; }
  const SessionOptions& options() const { return options_; }

  /// Process-unique id (monotonic, assigned at construction). Stamped
  /// onto the session trace span so per-session trace sinks and the
  /// server's request logs can correlate.
  int64_t session_id() const { return session_id_; }
  /// Span id of the session-lifetime trace span (0 when tracing was off
  /// at construction). Pass to Tracer::WriteChromeTraceForRoot /
  /// RenderReportForRoot for this session's isolated trace view.
  uint64_t trace_root() const {
    return session_span_ != nullptr ? session_span_->id() : 0;
  }

  /// Create a node; in eager mode it executes immediately (and its input
  /// edges are dropped so intermediate results can be garbage collected,
  /// like plain Pandas temporaries).
  Result<TaskNodePtr> AddNode(exec::OpDesc desc,
                              std::vector<TaskNodePtr> inputs);

  /// One segment of a print statement: a literal, or a lazy value.
  struct PrintArg {
    std::string literal;
    TaskNodePtr node;  // null => literal segment
    static PrintArg Literal(std::string s) { return {std::move(s), nullptr}; }
    static PrintArg Value(TaskNodePtr n) { return {"", std::move(n)}; }
  };

  /// Print. Lazy mode with lazy_print: appends a print node chained to the
  /// previous one (§3.3). Otherwise forces computation and emits now.
  Status Print(const std::vector<PrintArg>& args);

  /// Evaluate every pending lazy print (pd.flush(), end of program).
  Status Flush();

  /// Force computation of `node`, first processing pending prints (§3.4).
  /// `live` lists dataframes live after this point (the rewriter's
  /// live_df argument, §3.5): shared subexpressions between `node` and
  /// `live` are persisted for reuse.
  Result<exec::EagerValue> Compute(const TaskNodePtr& node,
                                   const std::vector<TaskNodePtr>& live = {});

  // ---- optimizer pass registry ----

  /// Append a pass to the per-round pipeline (runs after already
  /// registered passes).
  void RegisterOptimizerPass(std::unique_ptr<OptimizerPass> pass);
  /// Remove every registered pass.
  void ClearOptimizerPasses();
  const std::vector<std::unique_ptr<OptimizerPass>>& optimizer_passes()
      const {
    return optimizer_passes_;
  }

  /// The cross-query result cache attached to this session (null when
  /// caching is off). Shared instances are also visible through here.
  std::shared_ptr<ResultCache> result_cache() const;

  // ---- execution statistics ----

  /// Report of the most recent execution round (Flush/Compute/forced
  /// print). Valid until the next round runs on this session.
  const ExecutionReport& last_report() const { return last_report_; }
  /// Number of rounds executed (tests use this to detect that a round
  /// actually ran).
  int64_t num_rounds() const { return num_rounds_; }

  /// Number of node executions performed so far (tests use this to prove
  /// reuse/clearing behavior).
  int64_t num_node_executions() const {
    return num_node_executions_.load(std::memory_order_relaxed);
  }
  /// Number of nodes whose result was cleared by refcounting (§2.6).
  int64_t num_results_cleared() const { return num_results_cleared_; }

  std::ostream& out();

 private:
  Status ExecuteRound(const std::vector<TaskNodePtr>& roots,
                      const std::vector<TaskNodePtr>& live);
  Status ExecNode(const TaskNodePtr& node, NodeStats* stats);
  Status EmitPrint(const TaskNodePtr& node, NodeStats* stats);
  /// §3.5: mark the topmost nodes shared between the round's targets and
  /// the live set for persistence.
  void MarkSharedForPersist(const std::vector<TaskNodePtr>& roots,
                            const std::vector<TaskNodePtr>& live);

  SessionOptions options_;
  const int64_t session_id_;
  MemoryTracker* tracker_;
  std::unique_ptr<exec::Backend> backend_;
  /// Session-private injector armed from SessionOptions::fault_config
  /// (null when the config is empty and the Global() registry applies).
  /// Installed as the thread-current injector around execution paths;
  /// ThreadPool::Submit carries it into pool tasks.
  std::unique_ptr<FaultInjector> fault_injector_;
  /// Parse result of fault_config; surfaced by the next execution round.
  Status fault_status_;
  /// Workers for graph-level parallelism when no shared pool was
  /// injected (ExecutionOptions::scheduler_pool). Created once (first
  /// parallel round) and shared across rounds; distinct from the Modin
  /// backend's partition pool so a scheduler worker blocking in
  /// Backend::Execute can never starve the backend's own ParallelFor.
  std::unique_ptr<ThreadPool> scheduler_pool_;
  /// Session-lifetime trace span (inert when tracing is off). Never
  /// installed as thread context — sessions are not LIFO on a thread;
  /// execution rounds parent to it by explicit id.
  std::unique_ptr<trace::Span> session_span_;
  TaskGraph graph_;
  std::vector<TaskNodePtr> pending_prints_;
  TaskNodePtr last_print_;
  std::vector<std::unique_ptr<OptimizerPass>> optimizer_passes_;
  /// Cross-query cache machinery; null when caching is off for this
  /// session. The splice stage runs as the forced last stage of every
  /// round's pass pipeline (it must see the optimized plan, and it must
  /// survive InstallDefaultOptimizer's ClearOptimizerPasses).
  std::unique_ptr<CacheSplicer> cache_splicer_;
  ExecutionReport last_report_;
  int64_t num_rounds_ = 0;
  /// Atomic: incremented from scheduler worker threads.
  std::atomic<int64_t> num_node_executions_{0};
  int64_t num_results_cleared_ = 0;
};

/// Wrap a plain function as a named OptimizerPass (the bridge the
/// optimizer module uses to register its passes without subclassing).
std::unique_ptr<OptimizerPass> MakeFunctionPass(std::string name,
                                                OptimizerPassFn fn);

}  // namespace lafp::lazy

#endif  // LAFP_LAZY_SESSION_H_
