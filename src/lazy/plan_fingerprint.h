#ifndef LAFP_LAZY_PLAN_FINGERPRINT_H_
#define LAFP_LAZY_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lazy/task_graph.h"

namespace lafp::lazy {

/// Canonical identity of a task-graph subtree, the key half of the
/// cross-query result cache (DESIGN.md "Plan & result cache").
///
/// Canonicalization contract:
///  - node ids, handle identity, and print chaining never affect the hash;
///  - column renames are normalized away whenever the schema is statically
///    known (so `read(f).rename(a->b)[...b...]` hashes like
///    `read(f)[...a...]`), otherwise they hash structurally;
///  - op kind, op parameters, and input order always affect the hash;
///  - CSV sources contribute a separate input fingerprint
///    (io/fingerprint.h) so a file edit invalidates without changing the
///    plan hash.
struct PlanFingerprint {
  /// Name-normalized structural hash of the subtree.
  uint64_t plan_hash = 0;
  /// Combined fingerprint of every CSV source in the subtree.
  uint64_t input_hash = 0;
  /// False for prints, plans whose sources cannot be fingerprinted, plans
  /// that would error against the known schema, and plans whose output
  /// naming cannot be canonicalized soundly. Uncacheable nodes get a
  /// unique poison hash so they can never collide in the cache.
  bool cacheable = false;
  /// Statically inferred output columns as (visible, canonical) pairs, in
  /// output order. nullopt = unknown schema; canonicalization is then the
  /// identity (raw names were hashed), which is sound because any plan
  /// with an equal hash used the same raw names.
  std::optional<std::vector<std::pair<std::string, std::string>>> schema;
  /// The node statically produces a scalar (len/reduce), not a frame.
  bool scalar = false;

  /// True when every visible name equals its canonical name (or the
  /// schema is unknown). Cached values are stored under canonical names;
  /// non-identity fingerprints relabel on insert and hit.
  bool identity_names() const;
};

/// Bottom-up fingerprint computation with per-node memoization. One
/// instance serves one execution round: optimizer passes may rewrite the
/// graph between rounds, so call Reset() (or use a fresh instance) before
/// fingerprinting a new round. File fingerprints and CSV headers are
/// memoized per path for the instance's lifetime.
class PlanFingerprinter {
 public:
  PlanFingerprinter() = default;

  /// Fingerprint of the subtree rooted at `node`. Never fails: problems
  /// surface as cacheable == false.
  const PlanFingerprint& Fingerprint(const TaskNodePtr& node);

  /// Drop the per-node memo (keeps file/header memos: file identity is
  /// sampled once per round anyway, and tests mutate files only between
  /// rounds of *different* fingerprinter instances).
  void Reset() { memo_.clear(); }

 private:
  PlanFingerprint Compute(const TaskNodePtr& node);
  PlanFingerprint Poison(const TaskNodePtr& node);
  /// Input fingerprint (path + size + mtime + sample) for a CSV source;
  /// nullopt when the file cannot be fingerprinted.
  std::optional<uint64_t> FileHash(const std::string& path);
  /// Header names for a CSV source; nullopt on IO error or duplicates.
  const std::optional<std::vector<std::string>>& Header(
      const std::string& path, char delimiter);
  /// Column names for an LFC source; nullopt on IO error. Memoized like
  /// Header: footer parsing mmaps and decodes dictionaries, which must
  /// not be repaid on every fingerprint of the same path.
  const std::optional<std::vector<std::string>>& LfcColumns(
      const std::string& path);

  std::unordered_map<const TaskNode*, PlanFingerprint> memo_;
  std::unordered_map<std::string, std::optional<uint64_t>> file_memo_;
  std::unordered_map<std::string, std::optional<std::vector<std::string>>>
      header_memo_;
  std::unordered_map<std::string, std::optional<std::vector<std::string>>>
      lfc_header_memo_;
  uint64_t poison_seq_ = 0;
};

}  // namespace lafp::lazy

#endif  // LAFP_LAZY_PLAN_FINGERPRINT_H_
