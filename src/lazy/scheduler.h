#ifndef LAFP_LAZY_SCHEDULER_H_
#define LAFP_LAZY_SCHEDULER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "lazy/task_graph.h"

namespace lafp::lazy {

/// Per-node record of one execution round (the execution-stats API).
/// Collected by the Scheduler and surfaced via Session::last_report() so
/// benchmarks and tests can assert scheduling behavior instead of
/// guessing from wall time.
struct NodeStats {
  int64_t node_id = 0;
  std::string op;            // OpDesc::ToString() at execution time
  std::string backend;       // backend that ran the node ("pandas", ...)
  int64_t wall_micros = 0;   // time inside Execute/EmitPrint for this node
  bool fallback = false;     // §5.2 pandas-engine fallback path taken
  bool reused = false;       // result carried over from an earlier round
  bool is_print = false;
  int64_t rows_in = -1;      // sum of frame-input rows; -1 = unknown
  int64_t rows_out = -1;     // result rows; -1 = unknown (lazy plan)
  // Intra-operator kernel activity attributed to this node
  // (df::KernelCounters): time inside kernel morsel loops, morsels
  // processed (one per invocation when intra_op_threads = 0), and how
  // many kernel invocations actually forked to the kernel pool. Kernels
  // run by Modin partition workers are included: each worker records into
  // a local sink that the launching thread merges back
  // (df::SharedKernelCounters + MergeIntoCurrentSink).
  int64_t kernel_micros = 0;
  int64_t morsels = 0;
  int64_t parallel_kernels = 0;
};

/// Everything one call to Session::ExecuteRound did: optimizer passes run,
/// nodes executed (with per-node wall time / fallback / row counts), how
/// parallel the round was, and the tracked-memory peak afterwards.
struct ExecutionReport {
  std::string backend;
  int num_threads = 1;       // scheduler workers used for this round
  bool parallel = false;     // false = deterministic serial topo order
  int64_t wall_micros = 0;   // whole round, including optimizer passes
  int64_t nodes_executed = 0;
  int64_t nodes_reused = 0;
  /// Runnable nodes abandoned after the round's first failure (or an
  /// external Cancel). Invariant on a failed round:
  ///   nodes_executed + nodes_cancelled + failures == runnable nodes.
  int64_t nodes_cancelled = 0;
  int64_t prints_emitted = 0;
  int64_t results_cleared = 0;
  int64_t peak_tracked_bytes = 0;
  // Round-level sums of the per-node kernel counters.
  int64_t kernel_micros = 0;
  int64_t kernel_morsels = 0;
  int64_t parallel_kernels = 0;

  struct PassStat {
    std::string name;
    int64_t wall_micros = 0;
    // Plan delta: reachable task-graph size before/after the pass ran
    // (-1 = not measured, e.g. stats collection off).
    int64_t nodes_before = -1;
    int64_t nodes_after = -1;
  };
  std::vector<PassStat> passes;  // optimizer passes, in registration order
  std::vector<NodeStats> nodes;  // sorted by node_id (deterministic)

  /// Sum of known rows_out over non-print nodes (scalar results count 1).
  int64_t total_rows_out() const;
  /// Human-readable round summary (debugging aid).
  std::string ToString() const;
};

/// Parallel DAG executor for one round of the LaFP runtime. The scheduler
/// computes per-node in-degrees over `inputs` + `order_deps`, dispatches
/// ready nodes onto a shared ThreadPool, and releases consumers as their
/// dependencies complete. LaFP semantics are preserved exactly:
///   - lazy prints emit in program order (the §3.3 order_deps chain means
///     at most one print is ever ready);
///   - §2.6 result clearing stays race-free: `pending_consumers` is only
///     mutated inside the scheduler's completion lock, and an input is
///     cleared only once every consumer's task has finished;
///   - `persist` nodes and round roots are never cleared.
/// With num_threads <= 1 (or no pool) the scheduler degrades to the exact
/// serial topological execution the Session used before — that serial
/// path is the reference the parallel path is tested against.
class Scheduler {
 public:
  struct Options {
    int num_threads = 1;        // <= 1 => serial reference path
    bool clear_results = false;  // §2.6 clearing (lazy mode, eager backend)
    bool collect_stats = true;   // fill ExecutionReport::nodes
    /// Optional external cancellation token. The scheduler trips it on
    /// the first node failure (so cooperating work can stop early) and
    /// honors an externally tripped token between nodes: no new node
    /// starts once it is cancelled. Null => Run uses a private token.
    CancellationToken* cancel = nullptr;
  };

  /// Execution callbacks into the Session. Both receive a NodeStats to
  /// fill with fallback/row information (may be ignored when stats are
  /// off). They are invoked from worker threads in parallel mode and must
  /// only touch the given node (plus its already-executed inputs).
  struct Callbacks {
    std::function<Status(const TaskNodePtr&, NodeStats*)> exec_node;
    std::function<Status(const TaskNodePtr&, NodeStats*)> emit_print;
  };

  /// `pool` may be null (forces the serial path). The pool is shared: the
  /// scheduler never blocks pool workers on other pool tasks, so it can
  /// coexist with other users of the same pool.
  Scheduler(ThreadPool* pool, Options options, Callbacks callbacks);

  /// Execute every node reachable from `roots` that does not already hold
  /// a result. On error, cancels the round: no queued or pending node
  /// starts after the first failure, in-flight nodes finish, and the first
  /// failure (the root cause) is returned; everything abandoned is counted
  /// in ExecutionReport::nodes_cancelled. `report` (optional) receives the
  /// round's statistics; counter fields are incremented so a caller can
  /// aggregate multiple scheduler runs into one report.
  Status Run(const std::vector<TaskNodePtr>& roots, ExecutionReport* report);

 private:
  Status RunSerial(const std::vector<TaskNodePtr>& order,
                   const std::vector<TaskNodePtr>& roots,
                   CancellationToken* cancel, ExecutionReport* report);
  Status RunParallel(const std::vector<TaskNodePtr>& order,
                     const std::vector<TaskNodePtr>& roots,
                     CancellationToken* cancel, ExecutionReport* report);

  ThreadPool* pool_;
  Options options_;
  Callbacks callbacks_;
};

}  // namespace lafp::lazy

#endif  // LAFP_LAZY_SCHEDULER_H_
