#include "lazy/fat_dataframe.h"

#include "common/macros.h"

namespace lafp::lazy {

using exec::OpDesc;
using exec::OpKind;

Result<FatDataFrame> FatDataFrame::ReadCsv(Session* session,
                                           const std::string& path,
                                           io::CsvReadOptions options) {
  if (io::IsLfcFile(path)) {
    // Transparent dispatch: a read_csv pointed at a converted file scans
    // natively. dtype hints don't apply (LFC types are stored), and the
    // usecols/nrows contracts are identical.
    io::LfcReadOptions lfc;
    lfc.usecols = std::move(options.usecols);
    lfc.nrows = options.nrows;
    return ReadLfc(session, path, std::move(lfc));
  }
  OpDesc desc;
  desc.kind = OpKind::kReadCsv;
  desc.path = path;
  desc.csv_options = std::move(options);
  LAFP_ASSIGN_OR_RETURN(TaskNodePtr node,
                        session->AddNode(std::move(desc), {}));
  return FatDataFrame(session, std::move(node));
}

Result<FatDataFrame> FatDataFrame::ReadLfc(Session* session,
                                           const std::string& path,
                                           io::LfcReadOptions options) {
  OpDesc desc;
  desc.kind = OpKind::kReadLfc;
  desc.path = path;
  desc.lfc_options = std::move(options);
  LAFP_ASSIGN_OR_RETURN(TaskNodePtr node,
                        session->AddNode(std::move(desc), {}));
  return FatDataFrame(session, std::move(node));
}

Result<FatDataFrame> FatDataFrame::Unary(OpDesc desc) const {
  if (!valid()) return Status::Invalid("operation on an empty FatDataFrame");
  LAFP_ASSIGN_OR_RETURN(TaskNodePtr node,
                        session_->AddNode(std::move(desc), {node_}));
  return FatDataFrame(session_, std::move(node));
}

Result<FatDataFrame> FatDataFrame::Binary(OpDesc desc,
                                          const FatDataFrame& rhs) const {
  if (!valid() || !rhs.valid()) {
    return Status::Invalid("operation on an empty FatDataFrame");
  }
  if (rhs.session_ != session_) {
    return Status::Invalid("operands belong to different sessions");
  }
  LAFP_ASSIGN_OR_RETURN(
      TaskNodePtr node,
      session_->AddNode(std::move(desc), {node_, rhs.node_}));
  return FatDataFrame(session_, std::move(node));
}

Result<FatDataFrame> FatDataFrame::Col(const std::string& name) const {
  OpDesc desc;
  desc.kind = OpKind::kGetColumn;
  desc.column = name;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::Select(
    std::vector<std::string> names) const {
  OpDesc desc;
  desc.kind = OpKind::kSelect;
  desc.columns = std::move(names);
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::FilterBy(const FatDataFrame& mask) const {
  OpDesc desc;
  desc.kind = OpKind::kFilter;
  return Binary(std::move(desc), mask);
}

Result<FatDataFrame> FatDataFrame::Head(size_t n) const {
  OpDesc desc;
  desc.kind = OpKind::kHead;
  desc.n = n;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::Drop(
    std::vector<std::string> names) const {
  OpDesc desc;
  desc.kind = OpKind::kDropColumns;
  desc.columns = std::move(names);
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::Rename(
    std::map<std::string, std::string> mapping) const {
  OpDesc desc;
  desc.kind = OpKind::kRename;
  desc.rename = std::move(mapping);
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::CompareTo(df::CompareOp op,
                                             const df::Scalar& rhs) const {
  OpDesc desc;
  desc.kind = OpKind::kCompare;
  desc.compare_op = op;
  desc.has_scalar = true;
  desc.scalar = rhs;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::CompareCol(df::CompareOp op,
                                              const FatDataFrame& rhs) const {
  OpDesc desc;
  desc.kind = OpKind::kCompare;
  desc.compare_op = op;
  return Binary(std::move(desc), rhs);
}

Result<FatDataFrame> FatDataFrame::CompareLazy(df::CompareOp op,
                                               const LazyScalar& rhs) const {
  OpDesc desc;
  desc.kind = OpKind::kCompare;
  desc.compare_op = op;
  return Binary(std::move(desc), FatDataFrame(rhs.session(), rhs.node()));
}

Result<FatDataFrame> FatDataFrame::And(const FatDataFrame& rhs) const {
  OpDesc desc;
  desc.kind = OpKind::kBooleanAnd;
  return Binary(std::move(desc), rhs);
}

Result<FatDataFrame> FatDataFrame::Or(const FatDataFrame& rhs) const {
  OpDesc desc;
  desc.kind = OpKind::kBooleanOr;
  return Binary(std::move(desc), rhs);
}

Result<FatDataFrame> FatDataFrame::Not() const {
  OpDesc desc;
  desc.kind = OpKind::kBooleanNot;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::IsNull() const {
  OpDesc desc;
  desc.kind = OpKind::kIsNull;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::StrContains(
    const std::string& needle) const {
  OpDesc desc;
  desc.kind = OpKind::kStrContains;
  desc.str_arg = needle;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::IsIn(std::vector<df::Scalar> values) const {
  OpDesc desc;
  desc.kind = OpKind::kIsIn;
  desc.scalar_list = std::move(values);
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::Concat(
    Session* session, const std::vector<FatDataFrame>& parts) {
  if (parts.empty()) return Status::Invalid("concat of nothing");
  OpDesc desc;
  desc.kind = OpKind::kConcat;
  std::vector<TaskNodePtr> inputs;
  for (const auto& p : parts) {
    if (!p.valid() || p.session() != session) {
      return Status::Invalid("concat operands must share the session");
    }
    inputs.push_back(p.node());
  }
  LAFP_ASSIGN_OR_RETURN(TaskNodePtr node,
                        session->AddNode(std::move(desc), std::move(inputs)));
  return FatDataFrame(session, std::move(node));
}

Result<FatDataFrame> FatDataFrame::SetCol(const std::string& name,
                                          const FatDataFrame& value) const {
  OpDesc desc;
  desc.kind = OpKind::kSetColumn;
  desc.column = name;
  return Binary(std::move(desc), value);
}

Result<FatDataFrame> FatDataFrame::SetColScalar(
    const std::string& name, const df::Scalar& value) const {
  OpDesc desc;
  desc.kind = OpKind::kSetColumn;
  desc.column = name;
  desc.has_scalar = true;
  desc.scalar = value;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::SetColLazy(const std::string& name,
                                              const LazyScalar& value) const {
  OpDesc desc;
  desc.kind = OpKind::kSetColumn;
  desc.column = name;
  return Binary(std::move(desc),
                FatDataFrame(value.session(), value.node()));
}

Result<FatDataFrame> FatDataFrame::ArithScalar(df::ArithOp op,
                                               const df::Scalar& rhs,
                                               bool scalar_on_left) const {
  OpDesc desc;
  desc.kind = OpKind::kArith;
  desc.arith_op = op;
  desc.has_scalar = true;
  desc.scalar = rhs;
  desc.scalar_on_left = scalar_on_left;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::ArithCol(df::ArithOp op,
                                            const FatDataFrame& rhs) const {
  OpDesc desc;
  desc.kind = OpKind::kArith;
  desc.arith_op = op;
  return Binary(std::move(desc), rhs);
}

Result<FatDataFrame> FatDataFrame::ArithLazy(df::ArithOp op,
                                             const LazyScalar& rhs,
                                             bool scalar_on_left) const {
  OpDesc desc;
  desc.kind = OpKind::kArith;
  desc.arith_op = op;
  if (scalar_on_left) {
    // scalar <op> column: the scalar node comes first as input 0? The
    // kernel expects the column as input 0 in the two-input form, so we
    // encode side via scalar_on_left and keep the column first.
    desc.scalar_on_left = true;
  }
  return Binary(std::move(desc),
                FatDataFrame(rhs.session(), rhs.node()));
}

Result<FatDataFrame> FatDataFrame::Abs() const {
  OpDesc desc;
  desc.kind = OpKind::kAbs;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::Round(int digits) const {
  OpDesc desc;
  desc.kind = OpKind::kRound;
  desc.digits = digits;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::FillNa(const df::Scalar& value) const {
  OpDesc desc;
  desc.kind = OpKind::kFillNa;
  desc.has_scalar = true;
  desc.scalar = value;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::DropNa() const {
  OpDesc desc;
  desc.kind = OpKind::kDropNa;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::AsType(df::DataType type) const {
  OpDesc desc;
  desc.kind = OpKind::kAsType;
  desc.dtype = type;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::ToDatetime() const {
  OpDesc desc;
  desc.kind = OpKind::kToDatetime;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::Dt(df::DtField field) const {
  OpDesc desc;
  desc.kind = OpKind::kDtAccessor;
  desc.dt_field = field;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::GroupByAgg(
    std::vector<std::string> keys, std::vector<df::AggSpec> aggs) const {
  OpDesc desc;
  desc.kind = OpKind::kGroupByAgg;
  desc.columns = std::move(keys);
  desc.aggs = std::move(aggs);
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::Merge(const FatDataFrame& right,
                                         std::vector<std::string> on,
                                         df::JoinType how) const {
  OpDesc desc;
  desc.kind = OpKind::kMerge;
  desc.columns = std::move(on);
  desc.join_type = how;
  return Binary(std::move(desc), right);
}

Result<FatDataFrame> FatDataFrame::SortValues(
    std::vector<std::string> by, std::vector<bool> ascending) const {
  OpDesc desc;
  desc.kind = OpKind::kSortValues;
  desc.columns = std::move(by);
  desc.ascending = std::move(ascending);
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::DropDuplicates(
    std::vector<std::string> subset) const {
  OpDesc desc;
  desc.kind = OpKind::kDropDuplicates;
  desc.columns = std::move(subset);
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::UniqueValues() const {
  OpDesc desc;
  desc.kind = OpKind::kUnique;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::ValueCounts() const {
  OpDesc desc;
  desc.kind = OpKind::kValueCounts;
  return Unary(std::move(desc));
}

Result<FatDataFrame> FatDataFrame::Describe() const {
  OpDesc desc;
  desc.kind = OpKind::kDescribe;
  return Unary(std::move(desc));
}

Result<LazyScalar> FatDataFrame::Reduce(df::AggFunc func) const {
  OpDesc desc;
  desc.kind = OpKind::kReduce;
  desc.agg_func = func;
  LAFP_ASSIGN_OR_RETURN(FatDataFrame out, Unary(std::move(desc)));
  return LazyScalar(out.session(), out.node());
}

Result<LazyScalar> FatDataFrame::Len() const {
  OpDesc desc;
  desc.kind = OpKind::kLen;
  LAFP_ASSIGN_OR_RETURN(FatDataFrame out, Unary(std::move(desc)));
  return LazyScalar(out.session(), out.node());
}

Result<exec::EagerValue> FatDataFrame::Compute(
    const std::vector<FatDataFrame>& live_df) const {
  if (!valid()) return Status::Invalid("compute on an empty FatDataFrame");
  std::vector<TaskNodePtr> live;
  live.reserve(live_df.size());
  for (const auto& f : live_df) {
    if (f.valid()) live.push_back(f.node());
  }
  return session_->Compute(node_, live);
}

Result<df::DataFrame> FatDataFrame::ToEager(
    const std::vector<FatDataFrame>& live_df) const {
  LAFP_ASSIGN_OR_RETURN(exec::EagerValue v, Compute(live_df));
  if (v.is_scalar) {
    return Status::TypeError("value is a scalar, not a dataframe");
  }
  return v.frame;
}

std::string FatDataFrame::DebugDot() const {
  if (!valid()) return "digraph lafp {}\n";
  return TaskGraph::ToDot({node_});
}

Result<df::Scalar> LazyScalar::Value() const {
  if (!valid()) return Status::Invalid("value of an empty LazyScalar");
  LAFP_ASSIGN_OR_RETURN(exec::EagerValue v, session_->Compute(node_, {}));
  if (!v.is_scalar) {
    return Status::TypeError("lazy scalar evaluated to a frame");
  }
  return v.scalar;
}

}  // namespace lafp::lazy
