#include "lazy/task_graph.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace lafp::lazy {

TaskNodePtr TaskGraph::NewNode(exec::OpDesc desc,
                               std::vector<TaskNodePtr> inputs) {
  auto node = std::make_shared<TaskNode>();
  node->id = next_id_++;
  node->desc = std::move(desc);
  node->inputs = std::move(inputs);
  nodes_.push_back(node);
  if (nodes_.size() % 256 == 0) Compact();
  return node;
}

void TaskGraph::Compact() const {
  nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                              [](const std::weak_ptr<TaskNode>& w) {
                                return w.expired();
                              }),
               nodes_.end());
}

std::vector<TaskNodePtr> TaskGraph::TopoSort(
    const std::vector<TaskNodePtr>& roots) {
  std::vector<TaskNodePtr> order;
  std::unordered_set<const TaskNode*> visited;
  // Iterative post-order DFS.
  struct Frame {
    TaskNodePtr node;
    size_t next_child = 0;
  };
  for (const auto& root : roots) {
    if (root == nullptr || visited.count(root.get()) > 0) continue;
    std::vector<Frame> stack;
    stack.push_back({root});
    visited.insert(root.get());
    while (!stack.empty()) {
      Frame& top = stack.back();
      size_t total = top.node->inputs.size() + top.node->order_deps.size();
      if (top.next_child < total) {
        const TaskNodePtr& child =
            top.next_child < top.node->inputs.size()
                ? top.node->inputs[top.next_child]
                : top.node
                      ->order_deps[top.next_child - top.node->inputs.size()];
        ++top.next_child;
        if (child != nullptr && visited.insert(child.get()).second) {
          stack.push_back({child});
        }
      } else {
        order.push_back(top.node);
        stack.pop_back();
      }
    }
  }
  return order;
}

int TaskGraph::CountConsumers(const TaskNode* node) const {
  int count = 0;
  for (const auto& weak : nodes_) {
    auto live = weak.lock();
    if (live == nullptr) continue;
    for (const auto& in : live->inputs) {
      if (in.get() == node) ++count;
    }
  }
  return count;
}

std::vector<TaskNodePtr> TaskGraph::Consumers(const TaskNode* node) const {
  std::vector<TaskNodePtr> out;
  std::unordered_set<const TaskNode*> seen;
  for (const auto& weak : nodes_) {
    auto live = weak.lock();
    if (live == nullptr || seen.count(live.get()) > 0) continue;
    for (const auto& in : live->inputs) {
      if (in.get() == node) {
        out.push_back(live);
        seen.insert(live.get());
        break;
      }
    }
  }
  return out;
}

std::vector<TaskNodePtr> TaskGraph::LiveNodes() const {
  Compact();
  std::vector<TaskNodePtr> out;
  std::unordered_set<const TaskNode*> seen;
  for (const auto& weak : nodes_) {
    auto live = weak.lock();
    if (live != nullptr && seen.insert(live.get()).second) {
      out.push_back(std::move(live));
    }
  }
  return out;
}

std::string TaskGraph::ToDot(const std::vector<TaskNodePtr>& roots) {
  std::ostringstream os;
  os << "digraph lafp {\n  rankdir=BT;\n";
  for (const auto& node : TopoSort(roots)) {
    os << "  n" << node->id << " [label=\"" << node->desc.ToString();
    if (node->persist) os << " [persist]";
    os << "\"];\n";
    for (const auto& in : node->inputs) {
      os << "  n" << node->id << " -> n" << in->id << ";\n";
    }
    for (const auto& dep : node->order_deps) {
      os << "  n" << node->id << " -> n" << dep->id
         << " [style=dashed];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace lafp::lazy
