#include "lazy/scheduler.h"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "common/timer.h"
#include "common/trace.h"

namespace lafp::lazy {

int64_t ExecutionReport::total_rows_out() const {
  int64_t total = 0;
  for (const auto& n : nodes) {
    if (n.is_print) continue;
    if (n.rows_out > 0) total += n.rows_out;
  }
  return total;
}

std::string ExecutionReport::ToString() const {
  std::ostringstream os;
  os << "round[backend=" << backend << " threads=" << num_threads
     << (parallel ? " parallel" : " serial") << " wall_us=" << wall_micros
     << " executed=" << nodes_executed << " reused=" << nodes_reused
     << " cancelled=" << nodes_cancelled
     << " prints=" << prints_emitted << " cleared=" << results_cleared
     << " peak_bytes=" << peak_tracked_bytes
     << " kernel_us=" << kernel_micros << " morsels=" << kernel_morsels
     << " parallel_kernels=" << parallel_kernels << "]\n";
  for (const auto& p : passes) {
    os << "  pass " << p.name << ": " << p.wall_micros << "us";
    if (p.nodes_before >= 0) {
      os << " nodes " << p.nodes_before << "->" << p.nodes_after;
    }
    os << "\n";
  }
  for (const auto& n : nodes) {
    os << "  node " << n.node_id << " " << n.op << ": " << n.wall_micros
       << "us";
    if (n.reused) os << " reused";
    if (n.fallback) os << " fallback";
    if (n.rows_in >= 0) os << " rows_in=" << n.rows_in;
    if (n.rows_out >= 0) os << " rows_out=" << n.rows_out;
    if (n.morsels > 0) {
      os << " kernel_us=" << n.kernel_micros << " morsels=" << n.morsels;
      if (n.parallel_kernels > 0) {
        os << " parallel_kernels=" << n.parallel_kernels;
      }
    }
    os << "\n";
  }
  return os.str();
}

Scheduler::Scheduler(ThreadPool* pool, Options options, Callbacks callbacks)
    : pool_(pool),
      options_(options),
      callbacks_(std::move(callbacks)) {}

namespace {

/// The round's working set: nodes that need evaluation, and among them the
/// ones whose result is carried over from an earlier round (reuse leaves —
/// the scheduler never descends past a node that already holds a result).
struct RoundPlan {
  std::unordered_set<const TaskNode*> needed;
  std::unordered_set<const TaskNode*> reused;
  std::unordered_set<const TaskNode*> protected_nodes;  // round roots
};

RoundPlan BuildPlan(const std::vector<TaskNodePtr>& order,
                    const std::vector<TaskNodePtr>& roots) {
  RoundPlan plan;
  std::vector<TaskNodePtr> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    TaskNodePtr n = stack.back();
    stack.pop_back();
    if (n == nullptr || plan.needed.count(n.get()) > 0) continue;
    if (n->has_result() && n->executed) {
      plan.needed.insert(n.get());  // leaf: reuse, do not descend
      plan.reused.insert(n.get());
      continue;
    }
    plan.needed.insert(n.get());
    for (const auto& in : n->inputs) stack.push_back(in);
    for (const auto& dep : n->order_deps) stack.push_back(dep);
  }

  // Consumer counting for result clearing (§2.6), within this round.
  // Reused leaves do not consume their inputs (they will not re-execute).
  for (const auto& n : order) {
    if (plan.needed.count(n.get()) == 0) continue;
    n->pending_consumers = 0;
  }
  for (const auto& n : order) {
    if (plan.needed.count(n.get()) == 0) continue;
    if (plan.reused.count(n.get()) > 0) continue;
    for (const auto& in : n->inputs) ++in->pending_consumers;
  }
  for (const auto& r : roots) plan.protected_nodes.insert(r.get());
  return plan;
}

}  // namespace

Status Scheduler::Run(const std::vector<TaskNodePtr>& roots,
                      ExecutionReport* report) {
  CancellationToken local_cancel;
  CancellationToken* cancel =
      options_.cancel != nullptr ? options_.cancel : &local_cancel;
  std::vector<TaskNodePtr> order = TaskGraph::TopoSort(roots);
  if (options_.num_threads > 1 && pool_ != nullptr) {
    if (report != nullptr) {
      report->parallel = true;
      report->num_threads = options_.num_threads;
    }
    return RunParallel(order, roots, cancel, report);
  }
  if (report != nullptr) report->num_threads = 1;
  return RunSerial(order, roots, cancel, report);
}

Status Scheduler::RunSerial(const std::vector<TaskNodePtr>& order,
                            const std::vector<TaskNodePtr>& roots,
                            CancellationToken* cancel,
                            ExecutionReport* report) {
  RoundPlan plan = BuildPlan(order, roots);
  // Runnable nodes at or after topo index `from` — everything they
  // represent is abandoned when the round fails or is cancelled.
  auto count_abandoned = [&](size_t from) {
    int64_t count = 0;
    for (size_t j = from; j < order.size(); ++j) {
      const TaskNode* m = order[j].get();
      if (plan.needed.count(m) == 0 || plan.reused.count(m) > 0) continue;
      ++count;
    }
    return count;
  };
  for (size_t idx = 0; idx < order.size(); ++idx) {
    const TaskNodePtr& n = order[idx];
    if (plan.needed.count(n.get()) == 0) continue;
    if (plan.reused.count(n.get()) > 0) {
      if (report != nullptr) {
        ++report->nodes_reused;
        if (options_.collect_stats) {
          NodeStats stats;
          stats.node_id = n->id;
          stats.op = n->desc.ToString();
          stats.reused = true;
          report->nodes.push_back(std::move(stats));
        }
      }
      continue;  // carried over, nothing to do
    }
    if (cancel->cancelled()) {
      if (report != nullptr) report->nodes_cancelled += count_abandoned(idx);
      return Status::Cancelled("round cancelled");
    }
    NodeStats stats;
    stats.node_id = n->id;
    stats.is_print = n->is_print();
    trace::Span span(n->is_print() ? "print" : "node", "node");
    if (span.active()) {
      span.AddArg("node_id", n->id);
      span.AddArg("op", n->desc.ToString());
    }
    Timer timer;
    if (n->is_print()) {
      if (!n->print_done) {
        Status status = callbacks_.emit_print(n, &stats);
        if (!status.ok()) {
          cancel->Cancel();
          if (report != nullptr) {
            report->nodes_cancelled += count_abandoned(idx + 1);
          }
          return status;
        }
        n->print_done = true;
        n->executed = true;
        if (report != nullptr) ++report->prints_emitted;
      }
    } else if (!n->has_result()) {
      Status status = callbacks_.exec_node(n, &stats);
      if (!status.ok()) {
        cancel->Cancel();
        if (report != nullptr) {
          report->nodes_cancelled += count_abandoned(idx + 1);
        }
        return status;
      }
      if (report != nullptr) ++report->nodes_executed;
    }
    stats.wall_micros = timer.ElapsedMicros();
    if (span.active()) {
      span.AddArg("rows_in", stats.rows_in);
      span.AddArg("rows_out", stats.rows_out);
      span.AddArg("kernel_micros", stats.kernel_micros);
      span.AddArg("morsels", stats.morsels);
      if (stats.fallback) span.AddArg("fallback", 1);
    }
    if (report != nullptr) {
      report->kernel_micros += stats.kernel_micros;
      report->kernel_morsels += stats.morsels;
      report->parallel_kernels += stats.parallel_kernels;
      if (options_.collect_stats) report->nodes.push_back(std::move(stats));
    }
    // Release inputs whose consumers in this round are all done.
    for (const auto& in : n->inputs) {
      if (--in->pending_consumers > 0) continue;
      if (!options_.clear_results) continue;
      if (in->persist || plan.protected_nodes.count(in.get()) > 0) continue;
      if (in->has_result()) {
        in->result = exec::BackendValue{};
        in->executed = false;
        if (report != nullptr) ++report->results_cleared;
      }
    }
  }
  if (report != nullptr) {
    std::sort(report->nodes.begin(), report->nodes.end(),
              [](const NodeStats& a, const NodeStats& b) {
                return a.node_id < b.node_id;
              });
  }
  return Status::OK();
}

Status Scheduler::RunParallel(const std::vector<TaskNodePtr>& order,
                              const std::vector<TaskNodePtr>& roots,
                              CancellationToken* cancel,
                              ExecutionReport* report) {
  RoundPlan plan = BuildPlan(order, roots);

  // Per-node scheduling state. `remaining` counts unsatisfied dependency
  // edges (inputs + order_deps, per edge, so duplicate edges balance);
  // `consumers` lists dependents one entry per edge. All mutation happens
  // under `mu`, which also provides the happens-before edge between a
  // producer writing node->result/executed and any consumer reading it.
  struct NodeState {
    TaskNodePtr node;
    int remaining = 0;
    std::vector<TaskNode*> consumers;
  };
  std::unordered_map<const TaskNode*, NodeState> states;
  states.reserve(order.size());
  for (const auto& n : order) {
    if (plan.needed.count(n.get()) == 0) continue;
    states[n.get()].node = n;
  }
  for (const auto& n : order) {
    if (plan.needed.count(n.get()) == 0) continue;
    if (plan.reused.count(n.get()) > 0) continue;  // satisfied at start
    NodeState& state = states[n.get()];
    auto add_edge = [&](const TaskNodePtr& dep) {
      if (dep == nullptr) return;
      if (plan.needed.count(dep.get()) == 0) return;
      if (plan.reused.count(dep.get()) > 0) return;  // already satisfied
      states[dep.get()].consumers.push_back(n.get());
      ++state.remaining;
    };
    for (const auto& in : n->inputs) add_edge(in);
    for (const auto& dep : n->order_deps) add_edge(dep);
  }

  int64_t total_runnable = 0;
  for (const auto& n : order) {
    if (plan.needed.count(n.get()) == 0) continue;
    if (plan.reused.count(n.get()) > 0) continue;
    ++total_runnable;
  }

  std::mutex mu;
  WaitGroup wg;
  Status first_error = Status::OK();
  // Nodes whose task reached a terminal state: completed (callback OK or
  // nothing to do) or failed. After wg.Wait everything else — drained
  // tasks and tasks never dispatched — is by definition cancelled.
  int64_t completed = 0;
  int64_t failures = 0;

  // Reused leaves complete immediately (stats only; they release nothing,
  // and no dependency edge was counted against them).
  if (report != nullptr) {
    for (const auto& n : order) {
      if (plan.reused.count(n.get()) == 0) continue;
      ++report->nodes_reused;
      if (options_.collect_stats) {
        NodeStats stats;
        stats.node_id = n->id;
        stats.op = n->desc.ToString();
        stats.reused = true;
        report->nodes.push_back(std::move(stats));
      }
    }
  }

  // The caller's span context (the round span), captured here and
  // installed on each worker so node spans attribute to the round even
  // though they open on pool threads.
  const uint64_t round_span = trace::Tracer::CurrentSpanId();

  // Runs one ready node on a pool worker, then (under the lock) records
  // stats, releases dependents, and applies §2.6 clearing for inputs whose
  // last in-round consumer has now finished. Dispatching new ready nodes
  // happens before wg.Done() so the group count never dips to zero early.
  std::function<void(TaskNode*)> run_node = [&](TaskNode* raw) {
    NodeState& state = states[raw];
    const TaskNodePtr& n = state.node;
    NodeStats stats;
    stats.node_id = n->id;
    stats.is_print = n->is_print();
    Status status = Status::OK();
    bool emitted_print = false;
    bool executed_node = false;
    if (cancel->cancelled()) {
      // A sibling failed (or the caller cancelled): drain without
      // executing so the group empties. The node counts as cancelled.
      wg.Done();
      return;
    }
    {
      // Scoped so the span is recorded before wg.Done(): once the group
      // count reaches zero Run() may return, and a caller snapshotting
      // the tracer right after must see every node span of the round.
      trace::SpanContextScope round_ctx(round_span);
      trace::Span span(n->is_print() ? "print" : "node", "node");
      if (span.active()) {
        span.AddArg("node_id", n->id);
        span.AddArg("op", n->desc.ToString());
      }
      Timer timer;
      if (n->is_print()) {
        if (!n->print_done) {
          status = callbacks_.emit_print(n, &stats);
          if (status.ok()) {
            n->print_done = true;
            n->executed = true;
            emitted_print = true;
          }
        }
      } else if (!n->has_result()) {
        status = callbacks_.exec_node(n, &stats);
        executed_node = status.ok();
      }
      stats.wall_micros = timer.ElapsedMicros();
      if (span.active()) {
        span.AddArg("rows_in", stats.rows_in);
        span.AddArg("rows_out", stats.rows_out);
        span.AddArg("kernel_micros", stats.kernel_micros);
        span.AddArg("morsels", stats.morsels);
        if (stats.fallback) span.AddArg("fallback", 1);
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu);
      if (!status.ok()) {
        ++failures;
        if (!cancel->cancelled()) first_error = status;
        cancel->Cancel();
      } else {
        ++completed;
        if (report != nullptr) {
          if (emitted_print) ++report->prints_emitted;
          if (executed_node) ++report->nodes_executed;
          report->kernel_micros += stats.kernel_micros;
          report->kernel_morsels += stats.morsels;
          report->parallel_kernels += stats.parallel_kernels;
          if (options_.collect_stats) report->nodes.push_back(stats);
        }
        // Release this node's inputs (per-edge, mirrors the serial path).
        for (const auto& in : n->inputs) {
          if (--in->pending_consumers > 0) continue;
          if (!options_.clear_results) continue;
          if (in->persist || plan.protected_nodes.count(in.get()) > 0) {
            continue;
          }
          if (in->has_result()) {
            // Safe: every in-round consumer of `in` has completed (the
            // counter only reaches zero under this lock, after their
            // exec callbacks returned).
            in->result = exec::BackendValue{};
            in->executed = false;
            if (report != nullptr) ++report->results_cleared;
          }
        }
        for (TaskNode* consumer : state.consumers) {
          if (--states[consumer].remaining == 0 && !cancel->cancelled()) {
            wg.Add();
            pool_->Submit([&run_node, consumer] { run_node(consumer); });
          }
        }
      }
    }
    // Done() is the task's last touch of Run's stack state; it must come
    // after `mu` is released so Run cannot tear the round down while this
    // worker still holds the lock.
    wg.Done();
  };

  // Seed the pool with every initially ready node. At most one print is
  // ever among them: the §3.3 order_deps chain keeps later prints blocked
  // until their predecessor emits, which preserves program print order.
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& n : order) {
      if (plan.needed.count(n.get()) == 0) continue;
      if (plan.reused.count(n.get()) > 0) continue;
      NodeState& state = states[n.get()];
      if (state.remaining == 0) {
        wg.Add();
        TaskNode* raw = n.get();
        pool_->Submit([&run_node, raw] { run_node(raw); });
      }
    }
  }
  wg.Wait();

  // After the group empties no task is running: every runnable node
  // either reached a terminal state or was abandoned (drained after the
  // token tripped, or never dispatched because a dependency failed).
  if (cancel->cancelled() && report != nullptr) {
    report->nodes_cancelled += total_runnable - completed - failures;
  }
  if (report != nullptr) {
    std::sort(report->nodes.begin(), report->nodes.end(),
              [](const NodeStats& a, const NodeStats& b) {
                return a.node_id < b.node_id;
              });
  }
  if (!first_error.ok()) return first_error;
  if (cancel->cancelled()) return Status::Cancelled("round cancelled");
  return Status::OK();
}

}  // namespace lafp::lazy
