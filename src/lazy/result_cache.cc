#include "lazy/result_cache.h"

#include <cstdlib>
#include <optional>
#include <string>
#include <unordered_set>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "lazy/session.h"

namespace lafp::lazy {

namespace {

metrics::Counter* HitsCounter() {
  static auto* c = metrics::Registry::Global()->GetCounter("cache.hits");
  return c;
}
metrics::Counter* MissesCounter() {
  static auto* c = metrics::Registry::Global()->GetCounter("cache.misses");
  return c;
}
metrics::Counter* InsertsCounter() {
  static auto* c = metrics::Registry::Global()->GetCounter("cache.inserts");
  return c;
}
metrics::Counter* EvictionsCounter() {
  static auto* c = metrics::Registry::Global()->GetCounter("cache.evictions");
  return c;
}
metrics::Counter* SpliceCounter() {
  static auto* c = metrics::Registry::Global()->GetCounter("cache.splices");
  return c;
}
metrics::Counter* InsertFailCounter() {
  static auto* c =
      metrics::Registry::Global()->GetCounter("cache.insert_failures");
  return c;
}

Result<df::ColumnPtr> DeepCopyColumn(const df::Column& c,
                                     MemoryTracker* tracker) {
  switch (c.type()) {
    case df::DataType::kInt64:
      return df::Column::MakeInt(c.ints(), c.validity(), tracker);
    case df::DataType::kTimestamp:
      return df::Column::MakeTimestamp(c.ints(), c.validity(), tracker);
    case df::DataType::kDouble:
      return df::Column::MakeDouble(c.doubles(), c.validity(), tracker);
    case df::DataType::kString:
      return df::Column::MakeString(c.strings(), c.validity(), tracker);
    case df::DataType::kBool:
      return df::Column::MakeBool(c.bools(), c.validity(), tracker);
    case df::DataType::kCategory:
      // The dictionary is immutable and shared by design (§3.6).
      return df::Column::MakeCategory(c.codes(), c.validity(), c.dictionary(),
                                      tracker);
    default:
      return Status::NotImplemented("cache cannot copy column type " +
                                    std::string(df::DataTypeName(c.type())));
  }
}

int64_t ValueBytes(const exec::EagerValue& value) {
  // Scalars are priced at a flat token so the entry count stays bounded
  // even for scalar-heavy workloads.
  return value.is_scalar ? 64 : value.frame.footprint_bytes() + 64;
}

}  // namespace

size_t CacheKeyHash::operator()(const CacheKey& k) const {
  return static_cast<size_t>(HashCombine(k.plan_hash, k.input_hash));
}

Result<exec::EagerValue> DeepCopyEagerValue(const exec::EagerValue& value,
                                            MemoryTracker* tracker) {
  if (value.is_scalar) return exec::EagerValue::FromScalar(value.scalar);
  std::vector<df::ColumnPtr> columns;
  columns.reserve(value.frame.num_columns());
  for (const auto& col : value.frame.columns()) {
    auto copy = DeepCopyColumn(*col, tracker);
    if (!copy.ok()) return copy.status();
    columns.push_back(*std::move(copy));
  }
  auto frame = df::DataFrame::Make(value.frame.names(), std::move(columns));
  if (!frame.ok()) return frame.status();
  return exec::EagerValue::Frame(*std::move(frame));
}

Result<exec::EagerValue> RelabelColumns(
    const exec::EagerValue& value,
    const std::vector<std::pair<std::string, std::string>>& mapping,
    bool to_canonical) {
  if (value.is_scalar) return value;
  const df::DataFrame& frame = value.frame;
  if (frame.num_columns() != mapping.size()) {
    return Status::Invalid("cache relabel: column count mismatch");
  }
  std::vector<std::string> names;
  std::vector<df::ColumnPtr> columns;
  names.reserve(mapping.size());
  columns.reserve(mapping.size());
  for (const auto& [visible, canonical] : mapping) {
    const std::string& from = to_canonical ? visible : canonical;
    const std::string& to = to_canonical ? canonical : visible;
    int idx = frame.ColumnIndex(from);
    if (idx < 0) {
      return Status::Invalid("cache relabel: missing column " + from);
    }
    names.push_back(to);
    columns.push_back(frame.column(static_cast<size_t>(idx)));
  }
  auto out = df::DataFrame::Make(std::move(names), std::move(columns));
  if (!out.ok()) return out.status();
  return exec::EagerValue::Frame(*std::move(out));
}

ResultCache::ResultCache() : ResultCache(Options()) {}

ResultCache::ResultCache(Options options)
    : capacity_bytes_(options.capacity_bytes),
      effective_capacity_(options.capacity_bytes),
      owned_tracker_(options.charge_tracker == nullptr
                         ? std::make_unique<MemoryTracker>(0)
                         : nullptr),
      tracker_(options.charge_tracker != nullptr ? options.charge_tracker
                                                 : owned_tracker_.get()) {}

ResultCache::~ResultCache() { Clear(); }

Status ResultCache::Insert(const CacheKey& key,
                           const exec::EagerValue& value) {
  // Copy outside the lock: column construction can be expensive and can
  // itself evict (through tracker pressure) below.
  Result<exec::EagerValue> copy = DeepCopyEagerValue(value, tracker_);
  while (!copy.ok() && copy.status().IsOutOfMemory()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!EvictOneLocked()) break;  // nothing left to free
      UpdateGauges();
    }
    copy = DeepCopyEagerValue(value, tracker_);
  }
  if (!copy.ok()) {
    if (copy.status().IsOutOfMemory()) return Status::OK();  // skip, not fail
    return copy.status();
  }

  Entry entry;
  entry.key = key;
  entry.bytes = ValueBytes(*copy);
  if (static_cast<size_t>(entry.bytes) > effective_capacity()) {
    return Status::OK();  // larger than the whole cache: skip
  }
  entry.value =
      std::make_shared<const exec::EagerValue>(*std::move(copy));

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) EraseLocked(it->second);
  bytes_ += static_cast<size_t>(entry.bytes);
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  inserts_.fetch_add(1, std::memory_order_relaxed);
  InsertsCounter()->Increment();
  while (bytes_ > effective_capacity() && lru_.size() > 1) {
    EvictOneLocked();
  }
  UpdateGauges();
  return Status::OK();
}

void ResultCache::set_effective_capacity(size_t bytes) {
  if (bytes > capacity_bytes_) bytes = capacity_bytes_;
  effective_capacity_.store(bytes, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  while (bytes_ > bytes && !lru_.empty()) {
    EvictOneLocked();
  }
  UpdateGauges();
}

std::shared_ptr<const exec::EagerValue> ResultCache::Lookup(
    const CacheKey& key) {
  trace::Span span("cache.lookup", "cache");
  std::shared_ptr<const exec::EagerValue> value;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      value = it->second->value;
    }
  }
  if (value != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    HitsCounter()->Increment();
    span.AddArg("outcome", "hit");
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    MissesCounter()->Increment();
    span.AddArg("outcome", "miss");
  }
  return value;
}

bool ResultCache::Contains(const CacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.find(key) != index_.end();
}

void ResultCache::Erase(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) EraseLocked(it->second);
  UpdateGauges();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  UpdateGauges();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

bool ResultCache::EvictOneLocked() {
  if (lru_.empty()) return false;
  EraseLocked(std::prev(lru_.end()));
  evictions_.fetch_add(1, std::memory_order_relaxed);
  EvictionsCounter()->Increment();
  return true;
}

void ResultCache::EraseLocked(LruList::iterator it) {
  bytes_ -= static_cast<size_t>(it->bytes);
  index_.erase(it->key);
  lru_.erase(it);  // dropping the value releases its tracker reservation
}

void ResultCache::UpdateGauges() const {
  // Last-writer-wins across cache instances; the shared Global() cache is
  // the intended subject of the scrape.
  static auto* bytes_gauge = metrics::Registry::Global()->GetGauge(
      "cache.bytes");
  static auto* entries_gauge = metrics::Registry::Global()->GetGauge(
      "cache.entries");
  bytes_gauge->Set(static_cast<int64_t>(bytes_));
  entries_gauge->Set(static_cast<int64_t>(lru_.size()));
}

namespace {

/// Parse LAFP_CACHE: nullopt = knob absent/disabled; a value = capacity.
std::optional<size_t> EnvCacheCapacity() {
  const char* env = std::getenv("LAFP_CACHE");
  if (env == nullptr) return std::nullopt;
  std::string v(env);
  if (v.empty() || v == "0" || v == "off" || v == "OFF") return std::nullopt;
  if (v == "1" || v == "on" || v == "ON") {
    return ResultCache::kDefaultCapacityBytes;
  }
  bool digits = true;
  for (char c : v) digits &= (c >= '0' && c <= '9');
  if (digits) return static_cast<size_t>(std::stoull(v));
  return std::nullopt;  // malformed: treat as disabled
}

}  // namespace

const std::shared_ptr<ResultCache>& ResultCache::Global() {
  // Sized from LAFP_CACHE at first use; leaky (process lifetime). The
  // function-local static is a C++11 magic static: its initializer runs
  // exactly once even when many sessions construct concurrently, so the
  // env parse and the allocation cannot race or double-run (exercised by
  // the multi-session TSan test).
  static auto* cache = new std::shared_ptr<ResultCache>([] {
    ResultCache::Options opts;
    opts.capacity_bytes =
        EnvCacheCapacity().value_or(ResultCache::kDefaultCapacityBytes);
    return std::make_shared<ResultCache>(opts);
  }());
  return *cache;
}

std::shared_ptr<ResultCache> ResultCache::FromEnv() {
  if (!EnvCacheCapacity().has_value()) return nullptr;
  return Global();
}

Status CacheSplicer::Splice(Session* session,
                            const std::vector<TaskNodePtr>& roots) {
  // The graph may have been rewritten by earlier passes (and nodes freed
  // since the last round), so per-node memos cannot be carried over.
  fingerprinter_.Reset();
  exec::Backend* backend = session->backend();
  std::unordered_set<const TaskNode*> visited;

  // Iterative top-down walk: splice the topmost cached subtree, descend
  // only on a miss.
  std::vector<TaskNodePtr> stack(roots.rbegin(), roots.rend());
  while (!stack.empty()) {
    TaskNodePtr node = std::move(stack.back());
    stack.pop_back();
    if (node == nullptr || !visited.insert(node.get()).second) continue;
    if (node->has_result()) continue;  // computed earlier; subtree not needed
    if (node->is_print()) {
      for (const auto& in : node->inputs) stack.push_back(in);
      for (const auto& dep : node->order_deps) stack.push_back(dep);
      continue;
    }
    const PlanFingerprint& fp = fingerprinter_.Fingerprint(node);
    bool spliced = false;
    if (fp.cacheable) {
      CacheKey key{fp.plan_hash, fp.input_hash};
      if (auto cached = cache_->Lookup(key)) {
        // Relabel canonical -> this plan's visible names (data shared).
        std::shared_ptr<const exec::EagerValue> payload = cached;
        if (fp.schema.has_value() && !fp.identity_names()) {
          auto relabeled = RelabelColumns(*cached, *fp.schema, false);
          if (relabeled.ok()) {
            payload = std::make_shared<const exec::EagerValue>(
                *std::move(relabeled));
          } else {
            payload = nullptr;  // schema drift: treat as a miss
          }
        }
        if (payload != nullptr) {
          // Import into the backend BEFORE mutating the node so a failed
          // import leaves the plan untouched.
          exec::BackendValue imported;
          Status import_status;
          if (payload->is_scalar) {
            imported = exec::BackendValue::FromScalar(payload->scalar);
          } else {
            auto from = backend->FromEager(*payload);
            if (from.ok()) {
              imported = *std::move(from);
            } else {
              import_status = from.status();
            }
          }
          if (import_status.ok()) {
            node->materialized = std::move(payload);
            node->spliced_fp = std::make_shared<const PlanFingerprint>(fp);
            node->desc = exec::OpDesc{};
            node->desc.kind = exec::OpKind::kMaterialized;
            node->inputs.clear();
            node->result = std::move(imported);
            node->executed = true;
            SpliceCounter()->Increment();
            spliced = true;
          }
        }
      }
    }
    if (!spliced) {
      for (const auto& in : node->inputs) stack.push_back(in);
    }
  }
  return Status::OK();
}

void CacheSplicer::PrepareHarvest(Session* session,
                                  const std::vector<TaskNodePtr>& roots) {
  exec::Backend* backend = session->backend();
  if (backend->lazy() || !backend->preserves_row_order()) return;
  // Print inputs are the only candidates whose results §2.6 clearing
  // discards mid-round (compute targets are roots, never cleared;
  // persist-marked nodes survive by definition). Retain them until
  // InsertRoundResults has copied them into the cache. A node that is
  // also a non-print root must NOT be harvested: its result outlives the
  // round by contract (Compute reads it), so retaining — and then
  // dropping — it here would destroy the caller's value.
  std::unordered_set<const TaskNode*> round_roots;
  for (const auto& root : roots) {
    if (root != nullptr && !root->is_print()) round_roots.insert(root.get());
  }
  for (const auto& root : roots) {
    if (root == nullptr || !root->is_print()) continue;
    for (const auto& in : root->inputs) {
      if (in == nullptr || in->persist || in->is_print()) continue;
      if (round_roots.count(in.get()) > 0) continue;
      if (in->desc.kind == exec::OpKind::kMaterialized) continue;
      if (in->has_result()) continue;  // computed earlier; stays anyway
      const PlanFingerprint& fp = fingerprinter_.Fingerprint(in);
      if (!fp.cacheable) continue;
      if (cache_->Contains(CacheKey{fp.plan_hash, fp.input_hash})) continue;
      in->persist = true;
      harvest_.push_back(in);
    }
  }
}

void CacheSplicer::AbandonHarvest() {
  for (const auto& node : harvest_) node->persist = false;
  harvest_.clear();
}

void CacheSplicer::InsertRoundResults(Session* session,
                                      const std::vector<TaskNodePtr>& roots) {
  exec::Backend* backend = session->backend();
  // Insert policy: only materialized, order-preserving results enter the
  // cache. Dask neither preserves row order nor holds eager results, so
  // it may hit but never inserts.
  if (backend->lazy() || !backend->preserves_row_order()) {
    AbandonHarvest();
    return;
  }

  std::vector<TaskNodePtr> candidates;
  for (const auto& root : roots) {
    if (root == nullptr) continue;
    if (root->is_print()) {
      for (const auto& in : root->inputs) candidates.push_back(in);
    } else {
      candidates.push_back(root);
    }
  }
  for (const auto& node : TaskGraph::TopoSort(roots)) {
    if (node->persist) candidates.push_back(node);
  }

  std::unordered_set<const TaskNode*> seen;
  for (const auto& node : candidates) {
    if (node == nullptr || !seen.insert(node.get()).second) continue;
    if (node->desc.kind == exec::OpKind::kMaterialized) continue;
    if (node->is_print() || !node->has_result()) continue;
    const PlanFingerprint& fp = fingerprinter_.Fingerprint(node);
    if (!fp.cacheable) continue;
    CacheKey key{fp.plan_hash, fp.input_hash};
    if (cache_->Contains(key)) continue;
    auto eager = backend->Materialize(node->result);
    if (!eager.ok()) {
      InsertFailCounter()->Increment();
      continue;
    }
    // Store under canonical names so any rename-equivalent plan can hit.
    exec::EagerValue to_store = *std::move(eager);
    if (fp.schema.has_value() && !fp.identity_names()) {
      auto relabeled = RelabelColumns(to_store, *fp.schema, true);
      if (!relabeled.ok()) {
        InsertFailCounter()->Increment();
        continue;
      }
      to_store = *std::move(relabeled);
    }
    if (!cache_->Insert(key, to_store).ok()) {
      InsertFailCounter()->Increment();
    }
  }

  // Restore §2.6 semantics for the nodes PrepareHarvest retained: the
  // cache now owns a copy, so the node result can be dropped (it
  // re-imports from the cache payload if spliced again later).
  for (const auto& node : harvest_) {
    node->persist = false;
    node->result = exec::BackendValue{};
    node->executed = false;
  }
  harvest_.clear();
}

}  // namespace lafp::lazy
