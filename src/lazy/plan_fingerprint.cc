#include "lazy/plan_fingerprint.h"

#include <unordered_set>

#include "common/hash.h"
#include "io/columnar.h"
#include "io/fingerprint.h"

namespace lafp::lazy {

namespace {

using Schema = std::vector<std::pair<std::string, std::string>>;

const std::string* Canon(const Schema& schema, const std::string& visible) {
  for (const auto& [v, c] : schema) {
    if (v == visible) return &c;
  }
  return nullptr;
}

bool HasCanonical(const Schema& schema, const std::string& canonical) {
  for (const auto& [v, c] : schema) {
    if (c == canonical) return true;
  }
  return false;
}

bool IdentityNames(const std::optional<Schema>& schema) {
  if (!schema.has_value()) return true;
  for (const auto& [v, c] : *schema) {
    if (v != c) return false;
  }
  return true;
}

/// Canonical-string field separator (cannot occur in quoted CSV names in
/// a way that matters: collisions would need identical op kinds too).
constexpr char kSep = '\x1f';

void Append(std::string* cs, const std::string& s) {
  *cs += s;
  *cs += kSep;
}

void Append(std::string* cs, int64_t v) { Append(cs, std::to_string(v)); }

/// Canonical form of a referenced column name: mapped through a known
/// input schema, raw otherwise. False when the name is missing from a
/// known schema (the op would KeyError at runtime — never cache that).
bool AppendName(std::string* cs, const std::optional<Schema>& in_schema,
                const std::string& name) {
  if (!in_schema.has_value()) {
    Append(cs, name);
    return true;
  }
  const std::string* c = Canon(*in_schema, name);
  if (c == nullptr) return false;
  Append(cs, *c);
  return true;
}

void AppendScalar(std::string* cs, const df::Scalar& s) {
  Append(cs, static_cast<int64_t>(s.type()));
  Append(cs, s.ToString());
}

/// Output schema of a series op that names its result after its input
/// column (compare/arith/str/dt/... — see exec/eager_ops.cc SeriesName).
/// False when the input statically cannot be viewed as a series.
bool SeriesSchema(const PlanFingerprint& in, std::optional<Schema>* out) {
  if (in.scalar) return false;
  if (!in.schema.has_value()) {
    out->reset();
    return true;
  }
  if (in.schema->size() != 1) return false;
  *out = in.schema;
  return true;
}

Schema IdentitySchema(const std::vector<std::string>& names) {
  Schema s;
  s.reserve(names.size());
  for (const auto& n : names) s.emplace_back(n, n);
  return s;
}

}  // namespace

bool PlanFingerprint::identity_names() const { return IdentityNames(schema); }

const PlanFingerprint& PlanFingerprinter::Fingerprint(
    const TaskNodePtr& node) {
  auto it = memo_.find(node.get());
  if (it != memo_.end()) return it->second;
  // Dependencies-first order keeps Compute() non-recursive: every input
  // is memoized before its consumer.
  for (const auto& n : TaskGraph::TopoSort({node})) {
    if (memo_.find(n.get()) == memo_.end()) {
      memo_.emplace(n.get(), Compute(n));
    }
  }
  return memo_.at(node.get());
}

PlanFingerprint PlanFingerprinter::Poison(const TaskNodePtr& node) {
  PlanFingerprint fp;
  fp.cacheable = false;
  fp.plan_hash = HashCombine(
      0x9d15caffe1dULL,
      HashCombine(++poison_seq_, static_cast<uint64_t>(node->id)));
  fp.input_hash = fp.plan_hash;
  return fp;
}

std::optional<uint64_t> PlanFingerprinter::FileHash(const std::string& path) {
  auto it = file_memo_.find(path);
  if (it != file_memo_.end()) return it->second;
  std::optional<uint64_t> hash;
  // Dispatches on the file's magic: LFC files key on their stored
  // footer checksum, everything else on the sampled-content hash.
  auto fp = io::FingerprintInputFile(path);
  if (fp.ok()) hash = fp->hash;
  file_memo_.emplace(path, hash);
  return hash;
}

const std::optional<std::vector<std::string>>& PlanFingerprinter::Header(
    const std::string& path, char delimiter) {
  auto it = header_memo_.find(path);
  if (it != header_memo_.end()) return it->second;
  std::optional<std::vector<std::string>> header;
  auto names = io::ReadCsvHeaderNames(path, delimiter);
  if (names.ok()) {
    std::unordered_set<std::string> seen;
    bool unique = true;
    for (const auto& n : *names) unique &= seen.insert(n).second;
    if (unique) header = *std::move(names);
  }
  return header_memo_.emplace(path, std::move(header)).first->second;
}

const std::optional<std::vector<std::string>>& PlanFingerprinter::LfcColumns(
    const std::string& path) {
  auto it = lfc_header_memo_.find(path);
  if (it != lfc_header_memo_.end()) return it->second;
  std::optional<std::vector<std::string>> names;
  auto info = io::ReadLfcInfo(path);
  if (info.ok()) {
    names.emplace();
    names->reserve(info->columns.size());
    for (const auto& c : info->columns) names->push_back(c.name);
  }
  return lfc_header_memo_.emplace(path, std::move(names)).first->second;
}

PlanFingerprint PlanFingerprinter::Compute(const TaskNodePtr& node) {
  using exec::OpKind;
  const exec::OpDesc& d = node->desc;
  if (d.kind == OpKind::kPrint) return Poison(node);
  if (d.kind == OpKind::kMaterialized) {
    // A spliced node reuses the fingerprint its subtree carried at splice
    // time, so later rounds over a partially spliced graph hash exactly
    // like the original plan.
    if (node->spliced_fp != nullptr) return *node->spliced_fp;
    return Poison(node);
  }

  std::vector<const PlanFingerprint*> ins;
  ins.reserve(node->inputs.size());
  bool inputs_cacheable = true;
  for (const auto& in : node->inputs) {
    const PlanFingerprint& f = memo_.at(in.get());
    inputs_cacheable &= f.cacheable;
    ins.push_back(&f);
  }
  const std::optional<Schema> no_schema;
  const std::optional<Schema>& in0 =
      ins.empty() ? no_schema : ins[0]->schema;

  // Ops whose output column names we cannot model are sound only when no
  // input carries a non-identity canonicalization (then raw names were
  // hashed everywhere and any equal-hash plan used the same names).
  auto all_inputs_identity = [&]() {
    for (const auto* f : ins) {
      if (!f->identity_names()) return false;
    }
    return true;
  };

  PlanFingerprint fp;
  fp.cacheable = inputs_cacheable;
  std::string cs;
  Append(&cs, static_cast<int64_t>(d.kind));

  switch (d.kind) {
    case OpKind::kReadCsv: {
      auto file = FileHash(d.path);
      if (!file.has_value()) return Poison(node);
      fp.input_hash = *file;
      for (const auto& c : d.csv_options.usecols) Append(&cs, c);
      for (const auto& [k, t] : d.csv_options.dtypes) {
        Append(&cs, k);
        Append(&cs, static_cast<int64_t>(t));
      }
      Append(&cs, std::string(1, d.csv_options.delimiter));
      Append(&cs, static_cast<int64_t>(d.csv_options.nrows));
      Append(&cs, static_cast<int64_t>(d.csv_options.infer_rows));
      const auto& header = Header(d.path, d.csv_options.delimiter);
      if (!d.csv_options.usecols.empty()) {
        fp.schema = IdentitySchema(d.csv_options.usecols);
      } else if (header.has_value()) {
        fp.schema = IdentitySchema(*header);
      }
      break;
    }
    case OpKind::kReadLfc: {
      auto file = FileHash(d.path);
      if (!file.has_value()) return Poison(node);
      fp.input_hash = *file;
      for (const auto& c : d.lfc_options.usecols) Append(&cs, c);
      Append(&cs, static_cast<int64_t>(d.lfc_options.nrows));
      Append(&cs, d.lfc_options.prune_enabled ? 1 : 0);
      // Prune conjuncts change the node's output (fewer chunks), so a
      // pruned and an unpruned scan must never share a fingerprint.
      for (const auto& p : d.lfc_options.prune) {
        Append(&cs, p.column);
        Append(&cs, static_cast<int64_t>(p.op));
        AppendScalar(&cs, p.scalar);
      }
      if (!d.lfc_options.usecols.empty()) {
        fp.schema = IdentitySchema(d.lfc_options.usecols);
      } else {
        const auto& names = LfcColumns(d.path);
        if (names.has_value()) fp.schema = IdentitySchema(*names);
      }
      break;
    }
    case OpKind::kSelect: {
      for (const auto& c : d.columns) {
        if (!AppendName(&cs, in0, c)) return Poison(node);
      }
      // Output names are the selected names; canonical via the input map
      // (identity when the input schema is unknown — raw names hashed).
      Schema s;
      for (const auto& c : d.columns) {
        const std::string* canon =
            in0.has_value() ? Canon(*in0, c) : nullptr;
        s.emplace_back(c, canon != nullptr ? *canon : c);
      }
      fp.schema = std::move(s);
      break;
    }
    case OpKind::kGetColumn: {
      if (!AppendName(&cs, in0, d.column)) return Poison(node);
      const std::string* canon =
          in0.has_value() ? Canon(*in0, d.column) : nullptr;
      fp.schema = Schema{{d.column, canon != nullptr ? *canon : d.column}};
      break;
    }
    case OpKind::kFilter:
      fp.schema = in0;
      break;
    case OpKind::kCompare:
      Append(&cs, static_cast<int64_t>(d.compare_op));
      Append(&cs, d.has_scalar ? 1 : 0);
      if (d.has_scalar) AppendScalar(&cs, d.scalar);
      if (!SeriesSchema(*ins[0], &fp.schema)) return Poison(node);
      break;
    case OpKind::kArith: {
      Append(&cs, static_cast<int64_t>(d.arith_op));
      Append(&cs, d.scalar_on_left ? 1 : 0);
      Append(&cs, d.has_scalar ? 1 : 0);
      if (d.has_scalar) AppendScalar(&cs, d.scalar);
      // The output series is named after the column-valued operand
      // (eager_ops.cc: a runtime-scalar lhs takes the rhs name).
      const PlanFingerprint* src = ins[0];
      if (!d.has_scalar && ins.size() >= 2 && ins[0]->scalar) src = ins[1];
      if (!SeriesSchema(*src, &fp.schema)) return Poison(node);
      break;
    }
    case OpKind::kBooleanAnd:
    case OpKind::kBooleanOr:
    case OpKind::kBooleanNot:
    case OpKind::kIsNull:
    case OpKind::kToDatetime:
    case OpKind::kUnique:
      if (!SeriesSchema(*ins[0], &fp.schema)) return Poison(node);
      break;
    case OpKind::kStrContains:
      Append(&cs, d.str_arg);
      if (!SeriesSchema(*ins[0], &fp.schema)) return Poison(node);
      break;
    case OpKind::kIsIn:
      for (const auto& s : d.scalar_list) AppendScalar(&cs, s);
      if (!SeriesSchema(*ins[0], &fp.schema)) return Poison(node);
      break;
    case OpKind::kAbs:
      if (!SeriesSchema(*ins[0], &fp.schema)) return Poison(node);
      break;
    case OpKind::kRound:
      Append(&cs, d.digits);
      if (!SeriesSchema(*ins[0], &fp.schema)) return Poison(node);
      break;
    case OpKind::kAsType:
      Append(&cs, static_cast<int64_t>(d.dtype));
      if (!SeriesSchema(*ins[0], &fp.schema)) return Poison(node);
      break;
    case OpKind::kDtAccessor:
      Append(&cs, static_cast<int64_t>(d.dt_field));
      if (!SeriesSchema(*ins[0], &fp.schema)) return Poison(node);
      break;
    case OpKind::kSetColumn: {
      Append(&cs, d.has_scalar ? 1 : 0);
      if (d.has_scalar) AppendScalar(&cs, d.scalar);
      if (!in0.has_value()) {
        Append(&cs, d.column);
        break;  // schema stays unknown
      }
      Schema s = *in0;
      const std::string* existing = Canon(s, d.column);
      if (existing != nullptr) {
        Append(&cs, *existing);  // overwrite keeps name and position
      } else {
        // Fresh column: its visible name becomes its canonical name,
        // which must not collide with an existing canonical slot.
        if (HasCanonical(s, d.column)) return Poison(node);
        Append(&cs, d.column);
        s.emplace_back(d.column, d.column);
      }
      fp.schema = std::move(s);
      break;
    }
    case OpKind::kDropColumns: {
      if (!in0.has_value()) {
        for (const auto& c : d.columns) Append(&cs, c);
        break;
      }
      Schema s = *in0;
      for (const auto& c : d.columns) {
        if (!AppendName(&cs, in0, c)) return Poison(node);
        for (auto it = s.begin(); it != s.end(); ++it) {
          if (it->first == c) {
            s.erase(it);
            break;
          }
        }
      }
      fp.schema = std::move(s);
      break;
    }
    case OpKind::kRename: {
      if (!in0.has_value()) {
        // Unknown input schema implies identity canonicalization below;
        // hash the rename structurally with raw names.
        for (const auto& [k, v] : d.rename) {
          Append(&cs, k);
          Append(&cs, v);
        }
        break;
      }
      // Try to normalize the rename away entirely: the engine ignores
      // unknown keys, so only keys present in the schema act. Safe when
      // every target is a brand-new name (no chains, swaps, or
      // collisions) — then the node hashes exactly like its input and
      // only the visible->canonical map changes.
      Schema s = *in0;
      bool safe = true;
      std::unordered_set<std::string> targets;
      std::vector<std::pair<std::string, std::string>> effective;
      for (const auto& [k, v] : d.rename) {
        if (Canon(s, k) == nullptr) continue;  // ignored key
        if (k == v) continue;                  // no-op entry
        if (Canon(s, v) != nullptr || !targets.insert(v).second) {
          safe = false;
          break;
        }
        effective.emplace_back(k, v);
      }
      if (safe) {
        for (auto& [visible, canonical] : s) {
          for (const auto& [k, v] : effective) {
            if (visible == k) {
              visible = v;
              break;
            }
          }
        }
        PlanFingerprint out = *ins[0];
        out.cacheable = inputs_cacheable;
        out.schema = std::move(s);
        out.scalar = false;
        return out;  // hash identical to the input: the rename vanishes
      }
      // Order-dependent rename (swap/chain): only structurally sound
      // when nothing upstream was name-normalized.
      if (!ins[0]->identity_names()) return Poison(node);
      for (const auto& [k, v] : d.rename) {
        Append(&cs, k);
        Append(&cs, v);
      }
      break;  // schema unknown
    }
    case OpKind::kFillNa:
      AppendScalar(&cs, d.scalar);
      fp.schema = in0;
      break;
    case OpKind::kDropNa:
      fp.schema = in0;
      break;
    case OpKind::kGroupByAgg: {
      Schema s;
      std::unordered_set<std::string> visible_seen, canonical_seen;
      bool ok = true;
      for (const auto& k : d.columns) {
        if (!AppendName(&cs, in0, k)) return Poison(node);
        const std::string* canon = in0.has_value() ? Canon(*in0, k) : nullptr;
        const std::string& c = canon != nullptr ? *canon : k;
        ok &= visible_seen.insert(k).second && canonical_seen.insert(c).second;
        s.emplace_back(k, c);
      }
      for (const auto& a : d.aggs) {
        if (!AppendName(&cs, in0, a.column)) return Poison(node);
        Append(&cs, static_cast<int64_t>(a.func));
        Append(&cs, a.out_name);
        ok &= visible_seen.insert(a.out_name).second &&
              canonical_seen.insert(a.out_name).second;
        s.emplace_back(a.out_name, a.out_name);
      }
      if (!ok) return Poison(node);  // ambiguous output naming
      fp.schema = std::move(s);
      break;
    }
    case OpKind::kReduce:
      Append(&cs, static_cast<int64_t>(d.agg_func));
      if (ins[0]->scalar ||
          (in0.has_value() && in0->size() != 1)) {
        return Poison(node);
      }
      fp.scalar = true;
      fp.schema = Schema{};
      break;
    case OpKind::kLen:
      fp.scalar = true;
      fp.schema = Schema{};
      break;
    case OpKind::kMerge:
      if (!all_inputs_identity()) return Poison(node);
      Append(&cs, static_cast<int64_t>(d.join_type));
      for (const auto& c : d.columns) Append(&cs, c);
      break;  // suffix naming unmodeled: schema unknown
    case OpKind::kSortValues:
      for (const auto& c : d.columns) {
        if (!AppendName(&cs, in0, c)) return Poison(node);
      }
      for (bool b : d.ascending) Append(&cs, b ? 1 : 0);
      fp.schema = in0;
      break;
    case OpKind::kDropDuplicates:
      for (const auto& c : d.columns) {
        if (!AppendName(&cs, in0, c)) return Poison(node);
      }
      fp.schema = in0;
      break;
    case OpKind::kValueCounts:
    case OpKind::kDescribe:
      if (!all_inputs_identity()) return Poison(node);
      break;  // engine-derived names: schema unknown
    case OpKind::kHead:
      Append(&cs, static_cast<int64_t>(d.n));
      fp.schema = in0;
      break;
    case OpKind::kConcat:
      if (!all_inputs_identity()) return Poison(node);
      break;  // union naming: schema unknown
    case OpKind::kPrint:
    case OpKind::kMaterialized:
      return Poison(node);  // handled above; keep the switch exhaustive
    default:
      return Poison(node);  // unknown future op
  }

  fp.plan_hash = Fnv1a64(cs);
  for (const auto* in : ins) {
    fp.plan_hash = HashCombine(fp.plan_hash, in->plan_hash);
    fp.input_hash = HashCombine(fp.input_hash, in->input_hash);
  }
  return fp;
}

}  // namespace lafp::lazy
