#ifndef LAFP_LAZY_TASK_GRAPH_H_
#define LAFP_LAZY_TASK_GRAPH_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/backend.h"
#include "exec/op.h"

namespace lafp::lazy {

struct PlanFingerprint;

/// One node of the LaFP task graph (paper §2.5, Figure 6). Nodes are
/// created by FatDataFrame API calls and carry:
///  - the operator description,
///  - data-dependency edges (`inputs`),
///  - ordering edges for lazy prints (`order_deps`, §3.3),
///  - execution state: the backend value once computed, and the consumer
///    refcount used for eager result clearing (§2.6).
struct TaskNode {
  int64_t id = 0;
  exec::OpDesc desc;
  std::vector<std::shared_ptr<TaskNode>> inputs;
  std::vector<std::shared_ptr<TaskNode>> order_deps;

  /// Marked by the common-computation-reuse optimization (§3.5): the
  /// node's result survives result clearing and, on a lazy backend, is
  /// persisted.
  bool persist = false;

  /// For print nodes: the message template. "\x01<k>\x02" substitutes the
  /// display form of inputs[k] (the f-string escape-ID mechanism, §3.3).
  std::string print_template;

  /// Set by the cache-splice pass (lazy/result_cache.h) when the node's
  /// original subtree was replaced by a cached result: the eager payload
  /// (already relabeled to this plan's visible column names) plus the
  /// fingerprint the subtree carried at splice time. The payload outlives
  /// result clearing (§2.6), so a cleared spliced node re-imports it
  /// instead of re-executing a subtree that no longer exists.
  std::shared_ptr<const exec::EagerValue> materialized;
  std::shared_ptr<const PlanFingerprint> spliced_fp;

  // ---- execution state ----
  exec::BackendValue result;
  bool executed = false;
  bool print_done = false;  // print side effect already emitted
  int pending_consumers = 0;

  bool is_print() const { return desc.kind == exec::OpKind::kPrint; }
  bool has_result() const { return executed && !result.empty(); }
};

using TaskNodePtr = std::shared_ptr<TaskNode>;

/// Registry and utilities over the DAG. The graph does not own execution —
/// the Session does — but tracks every node created in a session so the
/// optimizer can reason about parents (safe-point condition 3 of §3.2).
class TaskGraph {
 public:
  TaskNodePtr NewNode(exec::OpDesc desc, std::vector<TaskNodePtr> inputs);

  /// Topological order of all nodes reachable from `roots` via inputs and
  /// order_deps (dependencies first).
  static std::vector<TaskNodePtr> TopoSort(
      const std::vector<TaskNodePtr>& roots);

  /// Number of live nodes whose `inputs` contain `node`.
  int CountConsumers(const TaskNode* node) const;

  /// All live nodes that consume `node`.
  std::vector<TaskNodePtr> Consumers(const TaskNode* node) const;

  /// All nodes still alive (referenced by handles or other nodes).
  std::vector<TaskNodePtr> LiveNodes() const;

  /// Graphviz DOT dump of everything reachable from `roots` (debug aid;
  /// mirrors the paper's task-graph figures).
  static std::string ToDot(const std::vector<TaskNodePtr>& roots);

  int64_t num_created() const { return next_id_; }

 private:
  void Compact() const;

  int64_t next_id_ = 0;
  mutable std::vector<std::weak_ptr<TaskNode>> nodes_;
};

}  // namespace lafp::lazy

#endif  // LAFP_LAZY_TASK_GRAPH_H_
