#include "lazy/session.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "dataframe/kernel_context.h"

namespace lafp::lazy {

std::string PrintPlaceholder(size_t input_index) {
  return "\x01" + std::to_string(input_index) + "\x02";
}

ExecutionOptions::Resolved ExecutionOptions::Resolve(
    const exec::BackendConfig& legacy) const {
  Resolved r;
  r.num_threads = num_threads > 0 ? num_threads : legacy.num_threads;
  if (r.num_threads < 1) r.num_threads = 1;
  r.intra_op_threads =
      intra_op_threads > 0 ? intra_op_threads : legacy.intra_op_threads;
  if (r.intra_op_threads < 0) r.intra_op_threads = 0;
  r.morsel_rows = morsel_rows;
  return r;
}

namespace {

/// Write the resolved knobs back into both homes so the backend (Modin
/// partition pool, kernel context) and the scheduler agree on one number;
/// after this, nothing downstream interprets a 0 as "inherit".
SessionOptions NormalizeOptions(SessionOptions options) {
  ExecutionOptions::Resolved r =
      options.exec.Resolve(options.backend_config);
  options.exec.num_threads = r.num_threads;
  options.backend_config.num_threads = r.num_threads;
  options.exec.intra_op_threads = r.intra_op_threads;
  options.backend_config.intra_op_threads = r.intra_op_threads;
  options.backend_config.morsel_rows = r.morsel_rows;
  // Shard-count resolution: Builder::shards(n) wins; an unset count on
  // the shard backend falls back to LAFP_SHARDS, then to 2 workers.
  if (options.backend == exec::BackendKind::kShard &&
      options.backend_config.shards <= 0) {
    int shards = 2;
    if (const char* env = std::getenv("LAFP_SHARDS")) {
      auto parsed = ParseInt64(env);
      if (parsed.has_value() && *parsed >= 1 && *parsed <= 64) {
        shards = static_cast<int>(*parsed);
      }
    }
    options.backend_config.shards = shards;
  }
  // One cancellation token for the scheduler and the backend: the shard
  // coordinator checks it between request waves, so a cancelled query
  // stops fanning out mid-exchange, not just at node boundaries.
  options.backend_config.cancel = options.exec.cancel;
  return options;
}

/// Process-wide session id source: concurrent sessions (one per server
/// request) get distinct, monotonic ids.
std::atomic<int64_t> next_session_id{1};

class FunctionPass : public OptimizerPass {
 public:
  FunctionPass(std::string name, OptimizerPassFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  const std::string& name() const override { return name_; }

  Status Run(Session* session, const std::vector<TaskNodePtr>& roots,
             const std::vector<TaskNodePtr>& live) override {
    return fn_(session, roots, live);
  }

 private:
  std::string name_;
  OptimizerPassFn fn_;
};

}  // namespace

std::unique_ptr<OptimizerPass> MakeFunctionPass(std::string name,
                                                OptimizerPassFn fn) {
  return std::make_unique<FunctionPass>(std::move(name), std::move(fn));
}

Session::Session(SessionOptions options)
    : options_(NormalizeOptions(std::move(options))),
      session_id_(next_session_id.fetch_add(1, std::memory_order_relaxed)),
      tracker_(options_.tracker != nullptr ? options_.tracker
                                           : MemoryTracker::Default()),
      backend_(exec::MakeBackend(options_.backend, tracker_,
                                 options_.backend_config)) {
  if (!options_.fault_config.empty()) {
    // Session-private injector: concurrent sessions with different fault
    // configs coexist (nothing global is mutated). A parse failure still
    // surfaces from the first execution round, not the constructor.
    fault_injector_ = std::make_unique<FaultInjector>();
    fault_status_ = fault_injector_->InstallFromString(options_.fault_config);
  }
  if (options_.exec.trace) trace::Tracer::Global()->set_enabled(true);
  // Inert when the tracer stayed off (neither the option nor LAFP_TRACE).
  session_span_ = std::make_unique<trace::Span>(
      std::string("session:") + backend_->name(), "session",
      /*parent_id=*/0, /*install=*/false);
  // The at-exit trace splitter and per-session exports key on this arg.
  if (session_span_->active()) {
    session_span_->AddArg("session_id", session_id_);
  }
  // Cross-query cache: an explicit instance wins; bare `enabled` builds a
  // session-private cache charged to the session tracker; otherwise the
  // LAFP_CACHE env knob can attach the process-wide shared cache.
  std::shared_ptr<ResultCache> cache = options_.cache.cache;
  if (cache == nullptr && options_.cache.enabled) {
    ResultCache::Options copts;
    copts.capacity_bytes = options_.cache.capacity_bytes;
    copts.charge_tracker = tracker_;
    cache = std::make_shared<ResultCache>(copts);
  }
  if (cache == nullptr && !options_.cache.enabled &&
      options_.cache.cache == nullptr) {
    cache = ResultCache::FromEnv();
  }
  if (cache != nullptr && options_.mode == ExecutionMode::kLazy) {
    cache_splicer_ = std::make_unique<CacheSplicer>(std::move(cache));
  }
}

std::shared_ptr<ResultCache> Session::result_cache() const {
  return cache_splicer_ != nullptr ? cache_splicer_->cache() : nullptr;
}

Session::~Session() = default;

std::ostream& Session::out() {
  return options_.output != nullptr ? *options_.output : std::cout;
}

void Session::RegisterOptimizerPass(std::unique_ptr<OptimizerPass> pass) {
  if (pass != nullptr) optimizer_passes_.push_back(std::move(pass));
}

void Session::ClearOptimizerPasses() { optimizer_passes_.clear(); }

Result<TaskNodePtr> Session::AddNode(exec::OpDesc desc,
                                     std::vector<TaskNodePtr> inputs) {
  TaskNodePtr node = graph_.NewNode(std::move(desc), std::move(inputs));
  if (options_.mode == ExecutionMode::kEager) {
    LAFP_RETURN_NOT_OK(fault_status_);
    std::optional<ScopedFaultInjector> fault_ctx;
    if (fault_injector_ != nullptr) fault_ctx.emplace(fault_injector_.get());
    LAFP_RETURN_NOT_OK(ExecNode(node, nullptr));
    // Plain-Pandas memory semantics: intermediate results are freed when
    // the program drops its handle, so the node must not pin its inputs.
    node->inputs.clear();
  }
  return node;
}

Status Session::Print(const std::vector<PrintArg>& args) {
  // Build the template and collect value inputs.
  exec::OpDesc desc;
  desc.kind = exec::OpKind::kPrint;
  std::vector<TaskNodePtr> inputs;
  std::string tmpl;
  for (const auto& arg : args) {
    if (arg.node == nullptr) {
      tmpl += arg.literal;
    } else {
      tmpl += PrintPlaceholder(inputs.size());
      inputs.push_back(arg.node);
    }
  }

  bool lazy = options_.mode == ExecutionMode::kLazy && options_.lazy_print;
  TaskNodePtr node = graph_.NewNode(std::move(desc), std::move(inputs));
  node->print_template = std::move(tmpl);
  if (!lazy) {
    // Plain frameworks: print forces computation of its arguments now
    // (the behavior LaFP's lazy print avoids).
    LAFP_RETURN_NOT_OK(ExecuteRound({node}, {}));
    return Status::OK();
  }
  if (last_print_ != nullptr) {
    node->order_deps.push_back(last_print_);  // §3.3 ordering edge
  }
  last_print_ = node;
  pending_prints_.push_back(std::move(node));
  return Status::OK();
}

Status Session::Flush() {
  if (pending_prints_.empty()) return Status::OK();
  std::vector<TaskNodePtr> roots = std::move(pending_prints_);
  pending_prints_.clear();
  last_print_ = nullptr;
  return ExecuteRound(roots, {});
}

Result<exec::EagerValue> Session::Compute(
    const TaskNodePtr& node, const std::vector<TaskNodePtr>& live) {
  // Pending prints are processed together with this computation so output
  // order stays correct (§3.4).
  std::vector<TaskNodePtr> roots = std::move(pending_prints_);
  pending_prints_.clear();
  last_print_ = nullptr;
  roots.push_back(node);
  LAFP_RETURN_NOT_OK(ExecuteRound(roots, live));
  // Post-round Persist/Materialize can hit spill/IO fault points too
  // (Dask streaming evaluation), so they run under the session injector
  // like the round itself.
  std::optional<ScopedFaultInjector> fault_ctx;
  if (fault_injector_ != nullptr) fault_ctx.emplace(fault_injector_.get());
  if (node->result.empty() && !node->result.is_scalar) {
    return Status::ExecutionError("compute produced no result");
  }
  if (backend_->lazy()) {
    // compute() returns a materialized frame (pandas semantics): persist
    // the *existing* plan node before materializing so the evaluator
    // caches the partitions on it and later uses do not re-stream the
    // plan. The footprint stays charged — that is what forcing costs
    // (§3.4). Swapping in a fresh backend value here instead would orphan
    // consumers executed in earlier rounds: they still reference this
    // node, and a fused zone mixing the old and new plan nodes sees two
    // sources with different partition geometry for the same frame.
    LAFP_RETURN_NOT_OK(backend_->Persist(node->result));
  }
  LAFP_ASSIGN_OR_RETURN(exec::EagerValue value,
                        backend_->Materialize(node->result));
  return value;
}

void Session::MarkSharedForPersist(const std::vector<TaskNodePtr>& roots,
                                   const std::vector<TaskNodePtr>& live) {
  if (live.empty()) return;
  auto reach = [](const std::vector<TaskNodePtr>& from) {
    std::unordered_set<const TaskNode*> out;
    for (const auto& n : TaskGraph::TopoSort(from)) out.insert(n.get());
    return out;
  };
  std::unordered_set<const TaskNode*> from_roots = reach(roots);
  std::unordered_set<const TaskNode*> from_live = reach(live);
  // Shared subexpressions between what we are about to compute and what
  // stays live afterwards.
  std::unordered_set<const TaskNode*> shared;
  std::vector<TaskNodePtr> shared_nodes;
  for (const auto& n : TaskGraph::TopoSort(roots)) {
    if (from_live.count(n.get()) > 0) {
      shared.insert(n.get());
      shared_nodes.push_back(n);
    }
  }
  std::unordered_set<const TaskNode*> live_roots;
  for (const auto& n : live) live_roots.insert(n.get());
  // Persist the reuse frontier: a shared node whose value the live side
  // consumes directly (it is a live dataframe itself) or feeds into a
  // computation the current round does not perform. Persisting there
  // caches exactly what later computes would otherwise redo.
  for (const auto& n : shared_nodes) {
    if (n->desc.kind == exec::OpKind::kPrint) continue;
    bool frontier = live_roots.count(n.get()) > 0;
    if (!frontier) {
      for (const auto& consumer : graph_.Consumers(n.get())) {
        if (from_live.count(consumer.get()) > 0 &&
            shared.count(consumer.get()) == 0) {
          frontier = true;
          break;
        }
      }
    }
    if (frontier) n->persist = true;
  }
}

Status Session::ExecuteRound(const std::vector<TaskNodePtr>& roots,
                             const std::vector<TaskNodePtr>& live) {
  // A malformed SessionOptions::fault_config cannot surface from the
  // constructor; it fails the first round instead of being ignored.
  LAFP_RETURN_NOT_OK(fault_status_);
  // Session-private fault context for the whole round: pass bodies,
  // serial execution, and — via ThreadPool::Submit's capture — every
  // scheduler / partition / kernel-morsel task this round spawns.
  std::optional<ScopedFaultInjector> fault_ctx;
  if (fault_injector_ != nullptr) fault_ctx.emplace(fault_injector_.get());
  Timer round_timer;
  // Per-round memory epoch: ExecutionReport::peak_tracked_bytes is this
  // round's own high-water mark, not the process-lifetime peak.
  tracker_->ResetRoundPeak();
  trace::Span round_span("round:" + std::to_string(num_rounds_), "round",
                         session_span_->id(), /*install=*/true);
  ExecutionReport report;
  report.backend = backend_->name();

  // Plan-delta accounting for pass stats: reachable graph size before and
  // after each pass (one TopoSort per measurement, stats-gated).
  const bool plan_deltas = options_.exec.collect_stats;
  int64_t nodes_before =
      plan_deltas ? static_cast<int64_t>(TaskGraph::TopoSort(roots).size())
                  : -1;
  // One pipeline stage: timer + trace span + per-pass report entry.
  auto run_stage = [&](const std::string& name, auto&& body) -> Status {
    Timer pass_timer;
    trace::Span pass_span("pass:" + name, "pass");
    Status pass_status = body();
    int64_t nodes_after =
        plan_deltas ? static_cast<int64_t>(TaskGraph::TopoSort(roots).size())
                    : -1;
    if (pass_span.active()) {
      pass_span.AddArg("nodes_before", nodes_before);
      pass_span.AddArg("nodes_after", nodes_after);
    }
    report.passes.push_back(
        {name, pass_timer.ElapsedMicros(), nodes_before, nodes_after});
    nodes_before = nodes_after;
    return pass_status;
  };
  // Record the failed round: leaving the previous round's report in
  // last_report_ makes callers (fuzzer iterations, retry loops) read
  // stale stats as if this round had succeeded.
  auto fail_round = [&](Status status) -> Status {
    if (cache_splicer_ != nullptr) cache_splicer_->AbandonHarvest();
    report.wall_micros = round_timer.ElapsedMicros();
    report.peak_tracked_bytes = tracker_->round_peak();
    last_report_ = std::move(report);
    ++num_rounds_;
    return status;
  };
  for (const auto& pass : optimizer_passes_) {
    Status pass_status = run_stage(
        pass->name(), [&] { return pass->Run(this, roots, live); });
    if (!pass_status.ok()) return fail_round(std::move(pass_status));
  }
  // The cache-splice stage is pinned to the end of the pipeline (outside
  // the registry, so ClearOptimizerPasses cannot drop it and registered
  // rewrites have already produced the plan being fingerprinted).
  if (cache_splicer_ != nullptr) {
    Status splice_status = run_stage(
        "cache-splice", [&] { return cache_splicer_->Splice(this, roots); });
    if (!splice_status.ok()) return fail_round(std::move(splice_status));
  }
  MarkSharedForPersist(roots, live);
  if (cache_splicer_ != nullptr) cache_splicer_->PrepareHarvest(this, roots);

  // §2.6 result clearing applies to lazy execution on eager backends.
  // In eager mode program variables own their results (clearing would
  // orphan them: eager nodes drop input edges and cannot re-execute);
  // on a lazy backend results are cheap plan handles.
  const bool clear_results =
      options_.mode == ExecutionMode::kLazy && !backend_->lazy();

  // Graph-level parallelism applies to eager backends: their Execute()
  // does real work per node. A lazy backend's Execute() merely records a
  // plan node (microseconds), and its plan caches are not synchronized,
  // so those rounds stay on the deterministic serial path.
  // Already resolved by NormalizeOptions (no inherit sentinel left).
  int threads = options_.exec.num_threads;
  const bool parallel = threads > 1 && !options_.exec.serial_scheduler &&
                        !backend_->lazy();
  // An injected pool (query server) is shared across sessions; otherwise
  // the session lazily builds its own.
  ThreadPool* pool = options_.exec.scheduler_pool;
  if (parallel && pool == nullptr) {
    if (scheduler_pool_ == nullptr) {
      scheduler_pool_ = std::make_unique<ThreadPool>(threads);
    }
    pool = scheduler_pool_.get();
  }

  Scheduler::Options sched_options;
  sched_options.num_threads = parallel ? threads : 1;
  sched_options.clear_results = clear_results;
  sched_options.collect_stats = options_.exec.collect_stats;
  sched_options.cancel = options_.exec.cancel;
  Scheduler::Callbacks callbacks;
  callbacks.exec_node = [this](const TaskNodePtr& node, NodeStats* stats) {
    return ExecNode(node, stats);
  };
  callbacks.emit_print = [this](const TaskNodePtr& node, NodeStats* stats) {
    return EmitPrint(node, stats);
  };
  Scheduler scheduler(parallel ? pool : nullptr, sched_options,
                      std::move(callbacks));
  Status status = scheduler.Run(roots, &report);

  if (cache_splicer_ != nullptr) {
    if (status.ok()) {
      cache_splicer_->InsertRoundResults(this, roots);
    } else {
      cache_splicer_->AbandonHarvest();
    }
  }

  num_results_cleared_ += report.results_cleared;
  report.wall_micros = round_timer.ElapsedMicros();
  report.peak_tracked_bytes = tracker_->round_peak();
  if (round_span.active()) {
    round_span.AddArg("nodes_executed", report.nodes_executed);
    round_span.AddArg("nodes_reused", report.nodes_reused);
    round_span.AddArg("peak_bytes", report.peak_tracked_bytes);
    round_span.AddArg("parallel", report.parallel ? 1 : 0);
  }
  static auto* rounds_counter =
      metrics::Registry::Global()->GetCounter("session.rounds");
  rounds_counter->Increment();
  last_report_ = std::move(report);
  ++num_rounds_;
  return status;
}

Status Session::ExecNode(const TaskNodePtr& node, NodeStats* stats) {
  if (node->desc.kind == exec::OpKind::kMaterialized) {
    // Cache-spliced leaf whose imported result was cleared (§2.6):
    // re-import the retained payload instead of re-executing a subtree
    // that no longer exists.
    if (stats != nullptr) {
      stats->op = node->desc.ToString();
      stats->backend = backend_->name();
    }
    if (node->materialized == nullptr) {
      return Status::ExecutionError("materialized node lost its payload");
    }
    if (node->materialized->is_scalar) {
      node->result = exec::BackendValue::FromScalar(node->materialized->scalar);
    } else {
      LAFP_ASSIGN_OR_RETURN(node->result,
                            backend_->FromEager(*node->materialized));
    }
    node->executed = true;
    if (stats != nullptr) stats->rows_out = backend_->RowCount(node->result);
    if (node->persist) {
      LAFP_RETURN_NOT_OK(backend_->Persist(node->result));
    }
    return Status::OK();
  }
  std::vector<exec::BackendValue> inputs;
  inputs.reserve(node->inputs.size());
  for (const auto& in : node->inputs) {
    if (!in->executed) {
      return Status::ExecutionError("input not executed for node " +
                                    node->desc.ToString());
    }
    inputs.push_back(in->result);
  }
  if (stats != nullptr) {
    stats->op = node->desc.ToString();
    stats->backend = backend_->name();
    // Count each distinct upstream result once: a frame feeding both
    // sides of a self-merge is still one input frame.
    std::unordered_set<const TaskNode*> seen_inputs;
    for (const auto& in : node->inputs) {
      if (!seen_inputs.insert(in.get()).second) continue;
      int64_t rows = backend_->RowCount(in->result);
      if (rows >= 0) {
        stats->rows_in = (stats->rows_in < 0 ? 0 : stats->rows_in) + rows;
      }
    }
  }
  num_node_executions_.fetch_add(1, std::memory_order_relaxed);
  // Kernel counters accumulate in thread-local storage for the duration
  // of this node's execution, then flow into the stats record. Backends
  // that fan out to partition workers merge worker-side counters back
  // into this sink (df::MergeIntoCurrentSink) before Execute returns.
  df::KernelCounters counters;
  Status exec_status;
  {
    df::KernelCountersScope counters_scope(&counters);
    // Paper §5.2 fallback: convert to eager Pandas frames, apply the
    // Pandas-engine kernel, convert back. Shared between unsupported ops
    // and the graceful-degradation retry below.
    auto eager_fallback = [&]() -> Status {
      if (stats != nullptr) stats->fallback = true;
      trace::Instant("fallback", "fallback",
                     {trace::StrArg("op", node->desc.ToString())});
      static auto* fallback_counter =
          metrics::Registry::Global()->GetCounter("session.fallbacks");
      fallback_counter->Increment();
      std::vector<exec::EagerValue> eager_inputs;
      for (const auto& in : inputs) {
        LAFP_ASSIGN_OR_RETURN(exec::EagerValue v, backend_->Materialize(in));
        eager_inputs.push_back(std::move(v));
      }
      LAFP_ASSIGN_OR_RETURN(
          exec::EagerValue out,
          exec::ExecuteEagerOp(node->desc, eager_inputs, tracker_));
      LAFP_ASSIGN_OR_RETURN(node->result, backend_->FromEager(out));
      return Status::OK();
    };
    exec_status = [&]() -> Status {
      if (!backend_->SupportsOp(node->desc)) return eager_fallback();
      Status native = FaultPoint("backend.execute");
      if (native.ok()) {
        auto result = backend_->Execute(node->desc, inputs);
        if (result.ok()) {
          node->result = std::move(result).ValueOrDie();
          return Status::OK();
        }
        native = result.status();
      }
      // §4.3 graceful degradation: a backend failure that is about the
      // backend (broken engine, IO, missing capability) retries once on
      // the Pandas-engine path. OOM and semantic errors are about the
      // program and must surface unchanged.
      const bool retryable = native.IsExecutionError() ||
                             native.IsIOError() || native.IsNotImplemented();
      if (!options_.exec.graceful_fallback || !retryable) return native;
      return eager_fallback();
    }();
  }
  if (stats != nullptr) {
    stats->kernel_micros = counters.kernel_micros;
    stats->morsels = counters.morsels;
    stats->parallel_kernels = counters.parallel_kernels;
  }
  LAFP_RETURN_NOT_OK(exec_status);
  node->executed = true;
  if (stats != nullptr) stats->rows_out = backend_->RowCount(node->result);
  if (node->persist) {
    LAFP_RETURN_NOT_OK(backend_->Persist(node->result));
  }
  return Status::OK();
}

Status Session::EmitPrint(const TaskNodePtr& node, NodeStats* stats) {
  if (stats != nullptr) {
    stats->op = node->desc.ToString();
    stats->backend = backend_->name();
  }
  // Materializing print arguments can run kernels; attribute them to the
  // print node like ExecNode attributes execution kernels.
  df::KernelCounters counters;
  df::KernelCountersScope counters_scope(&counters);
  // Substitute each placeholder with the display form of the
  // corresponding input (f-string escape IDs, §3.3).
  std::string rendered;
  const std::string& tmpl = node->print_template;
  for (size_t i = 0; i < tmpl.size();) {
    if (tmpl[i] != '\x01') {
      rendered.push_back(tmpl[i++]);
      continue;
    }
    size_t end = tmpl.find('\x02', i);
    if (end == std::string::npos) {
      return Status::ExecutionError("malformed print template");
    }
    size_t idx = std::stoul(tmpl.substr(i + 1, end - i - 1));
    if (idx >= node->inputs.size()) {
      return Status::ExecutionError("print placeholder out of range");
    }
    const TaskNodePtr& arg = node->inputs[idx];
    if (!arg->executed) {
      return Status::ExecutionError("print argument not executed");
    }
    LAFP_ASSIGN_OR_RETURN(exec::EagerValue v,
                          backend_->Materialize(arg->result));
    rendered += v.ToDisplayString();
    i = end + 1;
  }
  out() << rendered << "\n";
  if (stats != nullptr) {
    stats->kernel_micros = counters.kernel_micros;
    stats->morsels = counters.morsels;
    stats->parallel_kernels = counters.parallel_kernels;
  }
  return Status::OK();
}

}  // namespace lafp::lazy
