#ifndef LAFP_LAZY_FAT_DATAFRAME_H_
#define LAFP_LAZY_FAT_DATAFRAME_H_

#include <map>
#include <string>
#include <vector>

#include "lazy/session.h"

namespace lafp::lazy {

/// A lazily computed scalar (a sum/mean/len result, §3.3's "lazy
/// integer"): participates in further lazy expressions and is only
/// evaluated when Value() is called (or when a print referencing it
/// flushes).
class LazyScalar {
 public:
  LazyScalar() = default;
  LazyScalar(Session* session, TaskNodePtr node)
      : session_(session), node_(std::move(node)) {}

  Session* session() const { return session_; }
  const TaskNodePtr& node() const { return node_; }
  bool valid() const { return session_ != nullptr && node_ != nullptr; }

  /// Force evaluation.
  Result<df::Scalar> Value() const;

 private:
  Session* session_ = nullptr;
  TaskNodePtr node_;
};

/// The lazy dataframe handle (the paper's LaFPDataFrame / FatDataFrame,
/// §2.5): every method records an operator node in the session's task
/// graph and returns a new handle. Nothing executes until Compute() — or
/// until the session decides results are required (prints under
/// non-lazy-print modes, program end). In an eager-mode session the same
/// API materializes per call, giving plain-Pandas semantics.
///
/// A "series" (single column) is represented as a one-column frame, so
/// the same type covers pandas DataFrame and Series usage.
class FatDataFrame {
 public:
  FatDataFrame() = default;
  FatDataFrame(Session* session, TaskNodePtr node)
      : session_(session), node_(std::move(node)) {}

  Session* session() const { return session_; }
  const TaskNodePtr& node() const { return node_; }
  bool valid() const { return session_ != nullptr && node_ != nullptr; }

  /// pd.read_csv(path, usecols=..., dtype=...). When `path` is actually
  /// an LFC columnar file (magic sniff), the scan dispatches to ReadLfc
  /// with the shared knobs (usecols/nrows) carried over — scripts can
  /// point an unchanged read_csv call at a converted file.
  static Result<FatDataFrame> ReadCsv(Session* session,
                                      const std::string& path,
                                      io::CsvReadOptions options = {});

  /// pd.read_lfc(path, usecols=..., nrows=...) — native columnar scan.
  static Result<FatDataFrame> ReadLfc(Session* session,
                                      const std::string& path,
                                      io::LfcReadOptions options = {});

  /// pd.concat([a, b, ...]) — vertical concatenation.
  static Result<FatDataFrame> Concat(Session* session,
                                     const std::vector<FatDataFrame>& parts);

  // ---- selection ----
  Result<FatDataFrame> Col(const std::string& name) const;       // df["a"]
  Result<FatDataFrame> Select(std::vector<std::string> names) const;
  Result<FatDataFrame> FilterBy(const FatDataFrame& mask) const;  // df[mask]
  Result<FatDataFrame> Head(size_t n = 5) const;
  Result<FatDataFrame> Drop(std::vector<std::string> names) const;
  Result<FatDataFrame> Rename(
      std::map<std::string, std::string> mapping) const;

  // ---- predicates ----
  Result<FatDataFrame> CompareTo(df::CompareOp op,
                                 const df::Scalar& rhs) const;
  Result<FatDataFrame> CompareCol(df::CompareOp op,
                                  const FatDataFrame& rhs) const;
  Result<FatDataFrame> CompareLazy(df::CompareOp op,
                                   const LazyScalar& rhs) const;
  Result<FatDataFrame> And(const FatDataFrame& rhs) const;
  Result<FatDataFrame> Or(const FatDataFrame& rhs) const;
  Result<FatDataFrame> Not() const;
  Result<FatDataFrame> IsNull() const;
  Result<FatDataFrame> StrContains(const std::string& needle) const;
  /// col.isin([...]) — a pushdown-eligible membership predicate.
  Result<FatDataFrame> IsIn(std::vector<df::Scalar> values) const;

  // ---- assignment & arithmetic ----
  Result<FatDataFrame> SetCol(const std::string& name,
                              const FatDataFrame& value) const;
  Result<FatDataFrame> SetColScalar(const std::string& name,
                                    const df::Scalar& value) const;
  Result<FatDataFrame> SetColLazy(const std::string& name,
                                  const LazyScalar& value) const;
  Result<FatDataFrame> ArithScalar(df::ArithOp op, const df::Scalar& rhs,
                                   bool scalar_on_left = false) const;
  Result<FatDataFrame> ArithCol(df::ArithOp op,
                                const FatDataFrame& rhs) const;
  Result<FatDataFrame> ArithLazy(df::ArithOp op, const LazyScalar& rhs,
                                 bool scalar_on_left = false) const;
  Result<FatDataFrame> Abs() const;
  Result<FatDataFrame> Round(int digits) const;

  // ---- cleaning & casting ----
  Result<FatDataFrame> FillNa(const df::Scalar& value) const;
  Result<FatDataFrame> DropNa() const;
  Result<FatDataFrame> AsType(df::DataType type) const;
  Result<FatDataFrame> ToDatetime() const;
  Result<FatDataFrame> Dt(df::DtField field) const;

  // ---- relational ----
  Result<FatDataFrame> GroupByAgg(std::vector<std::string> keys,
                                  std::vector<df::AggSpec> aggs) const;
  Result<FatDataFrame> Merge(const FatDataFrame& right,
                             std::vector<std::string> on,
                             df::JoinType how) const;
  Result<FatDataFrame> SortValues(std::vector<std::string> by,
                                  std::vector<bool> ascending) const;
  Result<FatDataFrame> DropDuplicates(
      std::vector<std::string> subset) const;
  Result<FatDataFrame> UniqueValues() const;
  Result<FatDataFrame> ValueCounts() const;
  Result<FatDataFrame> Describe() const;

  // ---- reductions (lazy scalars, §3.3's lazy len included) ----
  Result<LazyScalar> Reduce(df::AggFunc func) const;
  Result<LazyScalar> Sum() const { return Reduce(df::AggFunc::kSum); }
  Result<LazyScalar> Mean() const { return Reduce(df::AggFunc::kMean); }
  Result<LazyScalar> Min() const { return Reduce(df::AggFunc::kMin); }
  Result<LazyScalar> Max() const { return Reduce(df::AggFunc::kMax); }
  Result<LazyScalar> Count() const { return Reduce(df::AggFunc::kCount); }
  Result<LazyScalar> Nunique() const {
    return Reduce(df::AggFunc::kNunique);
  }
  Result<LazyScalar> Len() const;

  // ---- materialization ----
  /// Force computation (paper's df.compute(live_df=[...])).
  Result<exec::EagerValue> Compute(
      const std::vector<FatDataFrame>& live_df = {}) const;
  /// Compute and return the eager engine frame.
  Result<df::DataFrame> ToEager(
      const std::vector<FatDataFrame>& live_df = {}) const;

  /// DOT dump of this value's task graph (cf. paper Figures 6 and 9).
  std::string DebugDot() const;

 private:
  Result<FatDataFrame> Unary(exec::OpDesc desc) const;
  Result<FatDataFrame> Binary(exec::OpDesc desc,
                              const FatDataFrame& rhs) const;

  Session* session_ = nullptr;
  TaskNodePtr node_;
};

}  // namespace lafp::lazy

#endif  // LAFP_LAZY_FAT_DATAFRAME_H_
