#ifndef LAFP_LAZY_RESULT_CACHE_H_
#define LAFP_LAZY_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/eager_ops.h"
#include "lazy/plan_fingerprint.h"
#include "lazy/task_graph.h"

namespace lafp::lazy {

class Session;

/// Cache key: canonical plan hash x combined input-file fingerprint. A
/// source-file edit changes input_hash, so stale entries simply stop being
/// reachable and age out of the LRU list.
struct CacheKey {
  uint64_t plan_hash = 0;
  uint64_t input_hash = 0;

  bool operator==(const CacheKey& o) const {
    return plan_hash == o.plan_hash && input_hash == o.input_hash;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const;
};

/// Bounded, thread-safe LRU cache of materialized query results, shared
/// across sessions (DESIGN.md "Plan & result cache"). Values are stored
/// under their *canonical* column names (see PlanFingerprint::schema);
/// Insert/Lookup callers relabel between visible and canonical names.
///
/// Inserted values are deep-copied into cache-owned columns charged to
/// `Options::charge_tracker` (a private unlimited tracker when null), so
/// cached data never dangles on a dead session tracker and eviction
/// releases real accounted bytes.
class ResultCache {
 public:
  static constexpr size_t kDefaultCapacityBytes = 256ull << 20;  // 256 MiB

  struct Options {
    size_t capacity_bytes = kDefaultCapacityBytes;
    /// Tracker charged for cached bytes. Null = the cache owns a private
    /// unlimited tracker. A non-null tracker must outlive the cache; a
    /// bounded one turns its budget into an additional capacity limit
    /// (reservation failure evicts, then skips the insert).
    MemoryTracker* charge_tracker = nullptr;
  };

  ResultCache();  // default Options
  explicit ResultCache(Options options);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Deep-copy `value` into the cache under `key`. Replaces an existing
  /// entry. Values larger than the capacity are skipped (OK). Fails only
  /// on copy errors other than tracker pressure.
  Status Insert(const CacheKey& key, const exec::EagerValue& value);

  /// Hit returns the cached value (shared, immutable) and refreshes LRU
  /// recency; miss returns null. Counts hits/misses.
  std::shared_ptr<const exec::EagerValue> Lookup(const CacheKey& key);

  /// Peek without touching recency or hit/miss counters.
  bool Contains(const CacheKey& key) const;

  void Erase(const CacheKey& key);
  void Clear();

  size_t bytes() const;
  size_t entries() const;
  size_t capacity_bytes() const { return capacity_bytes_; }

  /// Admission-aware capacity. The configured capacity is a hard ceiling;
  /// a server admitting many concurrent sessions can shrink the
  /// *effective* capacity so cached results yield memory to live queries,
  /// then restore it when load drains. Shrinking evicts immediately down
  /// to the new limit; values are clamped to [0, capacity_bytes()].
  void set_effective_capacity(size_t bytes);
  size_t effective_capacity() const {
    return effective_capacity_.load(std::memory_order_relaxed);
  }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t inserts() const { return inserts_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Process-wide shared cache (private tracker, default capacity; the
  /// LAFP_CACHE env knob can resize it — see FromEnv).
  static const std::shared_ptr<ResultCache>& Global();

  /// Resolve the LAFP_CACHE env knob: unset/"0"/"off" -> null (disabled);
  /// "1"/"on" -> Global(); a byte count -> Global(), whose capacity is
  /// read from the knob at first construction.
  static std::shared_ptr<ResultCache> FromEnv();

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const exec::EagerValue> value;
    int64_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  /// Drop the least-recent entry; false when empty. Requires mu_.
  bool EvictOneLocked();
  void EraseLocked(LruList::iterator it);
  void UpdateGauges() const;

  const size_t capacity_bytes_;
  std::atomic<size_t> effective_capacity_;
  std::unique_ptr<MemoryTracker> owned_tracker_;
  MemoryTracker* tracker_;

  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index_;
  size_t bytes_ = 0;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> evictions_{0};
};

/// Session-facing cache configuration (SessionOptions::cache).
struct CacheConfig {
  /// Off by default; the LAFP_CACHE env knob can still enable the shared
  /// Global() cache when this config is untouched.
  bool enabled = false;
  /// Capacity for the session-private cache built when `cache` is null.
  size_t capacity_bytes = ResultCache::kDefaultCapacityBytes;
  /// Explicit cache instance to share across sessions; null + enabled =
  /// the session builds a private cache charging the session's
  /// MemoryTracker.
  std::shared_ptr<ResultCache> cache;
};

/// Deep copy with fresh columns charged to `tracker` (scalars copy
/// trivially). Fails on tracker pressure or unsupported column types.
Result<exec::EagerValue> DeepCopyEagerValue(const exec::EagerValue& value,
                                            MemoryTracker* tracker);

/// Rename `value`'s columns through the fingerprint schema `mapping`
/// ((visible, canonical) pairs): visible -> canonical when `to_canonical`,
/// the inverse otherwise. Column data is shared, never copied. Fails when
/// the frame's columns do not match the mapping exactly.
Result<exec::EagerValue> RelabelColumns(
    const exec::EagerValue& value,
    const std::vector<std::pair<std::string, std::string>>& mapping,
    bool to_canonical);

/// The cache-splice optimizer stage and its post-round insert hook. One
/// instance per session; the session runs Splice as the forced last stage
/// of every round's pass pipeline and InsertRoundResults after a
/// successful round.
class CacheSplicer {
 public:
  explicit CacheSplicer(std::shared_ptr<ResultCache> cache)
      : cache_(std::move(cache)) {}

  /// Replace cached, cacheable subtrees under `roots` with kMaterialized
  /// leaves carrying the cached payload (imported into the session's
  /// backend). Runs after the rewriting passes, so fingerprints describe
  /// the optimized plan.
  Status Splice(Session* session, const std::vector<TaskNodePtr>& roots);

  /// Mark the round's insert candidates (print inputs with cacheable,
  /// not-yet-cached fingerprints) persist, so §2.6 result clearing does
  /// not discard their values before InsertRoundResults can copy them.
  /// Call after the session's own persist marking; InsertRoundResults
  /// undoes the marks (and clears the retained results) afterwards.
  /// No-op on backends that never insert (see InsertRoundResults).
  void PrepareHarvest(Session* session, const std::vector<TaskNodePtr>& roots);

  /// Undo PrepareHarvest's marks without inserting (failed rounds).
  void AbandonHarvest();

  /// Offer the round's materialized results (print inputs, compute
  /// targets, and persisted shared nodes) to the cache. Only
  /// order-preserving eager backends insert; any backend may hit. Insert
  /// failures are swallowed (the cache is an accelerator, never a
  /// correctness dependency).
  void InsertRoundResults(Session* session,
                          const std::vector<TaskNodePtr>& roots);

  const std::shared_ptr<ResultCache>& cache() const { return cache_; }

 private:
  std::shared_ptr<ResultCache> cache_;
  PlanFingerprinter fingerprinter_;
  /// Nodes whose persist flag PrepareHarvest set (it was clear before);
  /// their retained results are dropped once harvested.
  std::vector<TaskNodePtr> harvest_;
};

}  // namespace lafp::lazy

#endif  // LAFP_LAZY_RESULT_CACHE_H_
