#ifndef LAFP_EXEC_SPILL_H_
#define LAFP_EXEC_SPILL_H_

#include <string>

#include "dataframe/dataframe.h"

namespace lafp::exec {

/// Binary columnar spill format for partitions (the §5.4 disk-persist
/// extension). Unlike a CSV round trip, reload is a straight typed read —
/// no parsing, no type inference — so re-reading a spilled partition is
/// much cheaper than recomputing it.
///
/// Layout (little-endian, host order):
///   u64 magic | u32 ncols | u64 nrows
///   per column: u32 name_len, name bytes | u8 type | u8 has_validity |
///               [validity: nrows bytes] | payload
///   payload: int64/timestamp/double = nrows*8 raw; bool = nrows raw;
///            string/category = per row u32 len + bytes.
Status WriteSpillFile(const df::DataFrame& frame, const std::string& path);

Result<df::DataFrame> ReadSpillFile(const std::string& path,
                                    MemoryTracker* tracker);

}  // namespace lafp::exec

#endif  // LAFP_EXEC_SPILL_H_
