#ifndef LAFP_EXEC_SPILL_H_
#define LAFP_EXEC_SPILL_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "dataframe/dataframe.h"

namespace lafp::exec {

/// Binary columnar spill format for partitions (the §5.4 disk-persist
/// extension) — also the shard executor's partition-exchange wire format
/// (src/shard/): the same length-validated encoding travels over worker
/// socketpairs as lives in spill files. Unlike a CSV round trip, reload
/// is a straight typed read — no parsing, no type inference — so
/// re-reading a spilled partition is much cheaper than recomputing it.
///
/// Layout (little-endian, host order):
///   u64 magic | u32 ncols | u64 nrows
///   per column: u32 name_len, name bytes | u8 type | u8 has_validity |
///               [validity: nrows bytes] | payload
///   payload: int64/timestamp/double = nrows*8 raw; bool = nrows raw;
///            string/category = per row u32 len + bytes.
///
/// A zero-row frame with a non-empty column table is a first-class value
/// (the shard exchange ships empty partitions routinely) and must round-
/// trip; `ncols == 0 && nrows > 0` is rejected as corrupt (such a frame is
/// unrepresentable, so the header is lying).
Status WriteSpillFile(const df::DataFrame& frame, const std::string& path);

Result<df::DataFrame> ReadSpillFile(const std::string& path,
                                    MemoryTracker* tracker);

/// Stream core shared by the file API above and the shard exchange.
/// Write appends the encoded frame to `out`; no fault injection, no
/// cleanup — callers own the surrounding failure policy.
Status WriteSpillStream(const df::DataFrame& frame, std::ostream& out);

/// Decode one frame from `in`, trusting at most `limit` readable bytes
/// (every length field is clamp-validated against it before any
/// allocation). `context` names the source in error messages ("spill file
/// p.bin", "shard exchange"). When `expect_exact` is set, leftover bytes
/// inside `limit` after the frame are an error — on a message-framed
/// exchange payload trailing bytes mean protocol desync, never padding.
Result<df::DataFrame> ReadSpillStream(std::istream& in, uint64_t limit,
                                      MemoryTracker* tracker,
                                      const std::string& context,
                                      bool expect_exact = false);

/// In-memory wrappers used for exchange message payloads.
Result<std::string> SerializeFrame(const df::DataFrame& frame);
Result<df::DataFrame> DeserializeFrame(std::string_view bytes,
                                       MemoryTracker* tracker);

}  // namespace lafp::exec

#endif  // LAFP_EXEC_SPILL_H_
