#include "exec/partition.h"

#include <filesystem>

#include "common/macros.h"
#include "dataframe/ops.h"
#include "exec/spill.h"

namespace lafp::exec {

Status Partition::SpillTo(const std::string& dir, const std::string& name) {
  if (spilled()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string path = dir + "/" + name + ".part.bin";
  LAFP_RETURN_NOT_OK(WriteSpillFile(frame_, path));
  spill_path_ = path;
  frame_ = df::DataFrame();  // releases the memory reservation
  return Status::OK();
}

Result<df::DataFrame> Partition::Load(MemoryTracker* tracker) const {
  if (!spilled()) return frame_;
  return ReadSpillFile(spill_path_, tracker);
}

size_t PartitionedFrame::num_rows() const {
  size_t total = 0;
  for (const auto& p : partitions_) total += p->num_rows();
  return total;
}

Status PartitionedFrame::SpillAll(const std::string& dir,
                                  const std::string& name_prefix) {
  for (size_t i = 0; i < partitions_.size(); ++i) {
    LAFP_RETURN_NOT_OK(partitions_[i]->SpillTo(
        dir, name_prefix + "_" + std::to_string(i)));
  }
  return Status::OK();
}

Result<df::DataFrame> PartitionedFrame::ToEager(
    MemoryTracker* tracker) const {
  if (partitions_.empty()) return df::DataFrame();
  std::vector<df::DataFrame> frames;
  frames.reserve(partitions_.size());
  for (const auto& p : partitions_) {
    LAFP_ASSIGN_OR_RETURN(df::DataFrame f, p->Load(tracker));
    frames.push_back(std::move(f));
  }
  if (frames.size() == 1) return frames[0];
  return df::Concat(frames);
}

Result<PartitionedFrame> PartitionedFrame::FromEager(
    const df::DataFrame& frame, size_t partition_rows) {
  PartitionedFrame out;
  if (partition_rows == 0) partition_rows = 65536;
  size_t n = frame.num_rows();
  if (n == 0) {
    out.Add(frame);
    return out;
  }
  for (size_t offset = 0; offset < n; offset += partition_rows) {
    LAFP_ASSIGN_OR_RETURN(df::DataFrame chunk,
                          frame.SliceRows(offset, partition_rows));
    out.Add(std::move(chunk));
  }
  return out;
}

}  // namespace lafp::exec
