#ifndef LAFP_EXEC_BACKEND_H_
#define LAFP_EXEC_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "exec/eager_ops.h"
#include "exec/op.h"

namespace lafp::exec {

/// Tuning and simulation knobs shared by the backends.
struct BackendConfig {
  /// Worker threads for the Modin backend's partition parallelism.
  /// Legacy knob: the lazy runtime unifies this with the DAG scheduler's
  /// worker count via lazy::ExecutionOptions (the session resolves one
  /// number and writes it back here), so set it through
  /// SessionOptions::Builder::threads() when a session is involved.
  int num_threads = 4;
  /// Rows per partition for the partitioned backends.
  size_t partition_rows = 65536;
  /// Morsel-driven intra-operator parallelism inside the dataframe kernels
  /// (df::KernelContext). 0 = off (kernels run as one morsel, the legacy
  /// sequential path, byte-for-byte); 1 = serial but with the fixed morsel
  /// geometry applied (useful for determinism testing); >1 = morsel
  /// parallel on a kernel thread pool. Morsel boundaries depend only on
  /// (row count, morsel_rows) — never on this knob — so any value >= 1
  /// produces bit-identical results. Resolved by the session from
  /// lazy::ExecutionOptions::intra_op_threads.
  int intra_op_threads = 0;
  /// Rows per kernel morsel when intra_op_threads >= 1.
  size_t morsel_rows = 65536;
  /// Source partitions the Dask backend keeps in flight (models worker
  /// prefetch/parallelism): its steady-state memory is roughly
  /// prefetch_partitions x partition width, which is why projection
  /// pushdown reduces real Dask memory (paper Fig. 15).
  size_t prefetch_partitions = 8;
  /// Simulated scheduler overhead per partition task, in microseconds.
  /// Models Dask/Ray task dispatch cost; 0 disables. This is what makes
  /// the lazy/distributed backends slower than plain Pandas on in-memory
  /// data, as in the paper's Figure 13.
  int64_t task_overhead_us = 0;
  /// Directory for Dask spill files (empty = std::filesystem::temp dir).
  std::string spill_dir;
  /// Alternate spill directory tried when a write to spill_dir fails
  /// (disk full, dead mount). Empty = a "<temp>/lafp_dask_spill_alt"
  /// default; this is the graceful-degradation half of the §5.4 disk
  /// extension.
  std::string spill_fallback_dir;
  /// Extension (paper future work §5.4): persist Dask frames on disk
  /// instead of memory.
  bool spill_persisted = false;
  /// Non-owning worker pool shared across backend instances. Null = the
  /// backend owns a private pool sized from the knobs above (the
  /// single-session default). A query server owns one pool and injects
  /// it into every session's backend so N concurrent sessions multiplex
  /// a fixed worker set instead of oversubscribing the machine with N
  /// private pools; num_threads / intra_op_threads then cap only how
  /// much work one session keeps in flight. Must outlive the backend.
  ThreadPool* shared_pool = nullptr;
  /// Worker processes for the shard backend (BackendKind::kShard). 0 =
  /// unresolved; the session resolves it from Builder::shards(n) /
  /// LAFP_SHARDS (default 2). 1 is a valid degenerate cluster (one
  /// worker process) used for shard-count-invariance testing.
  int shards = 0;
  /// External cancellation token surfaced to backends that run long
  /// multi-step exchanges (the shard coordinator checks it between
  /// request waves and fails the op with kCancelled). Non-owning; null =
  /// never cancelled externally. The session copies
  /// lazy::ExecutionOptions::cancel here so the scheduler and the
  /// backend watch one token.
  CancellationToken* cancel = nullptr;
};

/// Opaque backend-specific frame representation. Eager backends store
/// materialized data; the Dask backend stores a lazy plan node.
class BackendFrame {
 public:
  virtual ~BackendFrame() = default;
};
using BackendFramePtr = std::shared_ptr<BackendFrame>;

/// A value held by a LaFP task-graph node after execution on a backend:
/// a backend frame, or an immediate scalar.
struct BackendValue {
  BackendFramePtr frame;
  df::Scalar scalar;
  bool is_scalar = false;

  static BackendValue Frame(BackendFramePtr f) {
    BackendValue v;
    v.frame = std::move(f);
    return v;
  }
  static BackendValue FromScalar(df::Scalar s) {
    BackendValue v;
    v.scalar = std::move(s);
    v.is_scalar = true;
    return v;
  }
  bool empty() const { return frame == nullptr && !is_scalar; }
};

/// Execution engine abstraction (paper §2.6, contribution 5). The LaFP
/// runtime walks its optimized task graph and calls Execute per node; for
/// ops a backend does not support, the runtime materializes the inputs,
/// runs the eager Pandas-engine kernel, and re-imports the result — the
/// paper's transparent fallback.
///
/// Thread-safety contract (required by the parallel DAG scheduler in
/// lazy/scheduler.h): for backends where lazy() is false, Execute,
/// Materialize, FromEager and RowCount may be called concurrently from
/// multiple scheduler workers, on distinct nodes whose inputs are fully
/// executed. Inputs are only read; any backend-internal shared state
/// (thread pools, the memory tracker) must be internally synchronized.
/// Lazy backends (Dask) are exempt: the scheduler serializes their rounds
/// because Execute() is cheap plan recording and the plan's persist
/// caches are deliberately unsynchronized.
class Backend {
 public:
  Backend(MemoryTracker* tracker, BackendConfig config)
      : tracker_(tracker != nullptr ? tracker : MemoryTracker::Default()),
        config_(config) {}
  virtual ~Backend() = default;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  virtual const char* name() const = 0;

  /// True for lazy engines (Dask): Execute() is cheap plan recording, so
  /// the LaFP runtime never clears node results (they hold plans, not
  /// data); eager backends return false and get §2.6 result clearing.
  virtual bool lazy() const { return false; }

  /// Dask does not preserve row order (paper §5.2); result comparison must
  /// canonicalize row order when this is false.
  virtual bool preserves_row_order() const = 0;

  /// Whether Execute can run this op natively (otherwise the runtime uses
  /// the Pandas fallback path).
  virtual bool SupportsOp(const OpDesc& desc) const = 0;

  /// Execute (eager backends) or record (lazy backends) one operator.
  virtual Result<BackendValue> Execute(
      const OpDesc& desc, const std::vector<BackendValue>& inputs) = 0;

  /// Force a value to an eager in-memory frame or scalar. For the Dask
  /// backend this triggers streaming evaluation of the recorded plan, and
  /// is the moment a larger-than-budget result OOMs.
  virtual Result<EagerValue> Materialize(const BackendValue& value) = 0;

  /// Import an eager value (fallback results, user-provided frames).
  virtual Result<BackendValue> FromEager(const EagerValue& value) = 0;

  /// Cache `value` across materializations (paper §3.5 common-computation
  /// reuse). No-op on eager backends, where values are already
  /// materialized.
  virtual Status Persist(const BackendValue& value) {
    (void)value;
    return Status::OK();
  }

  /// Release a persisted value's cache.
  virtual Status Unpersist(const BackendValue& value) {
    (void)value;
    return Status::OK();
  }

  /// Best-effort row count of a value for the execution-stats API: rows
  /// of a materialized frame, 1 for a scalar, -1 when unknown (an
  /// unevaluated lazy plan). Must be cheap (no materialization) and
  /// thread-safe.
  virtual int64_t RowCount(const BackendValue& value) const {
    return value.is_scalar ? 1 : -1;
  }

  MemoryTracker* tracker() const { return tracker_; }
  const BackendConfig& config() const { return config_; }

 protected:
  MemoryTracker* tracker_;
  BackendConfig config_;
};

enum class BackendKind : int {
  kPandas = 0,
  kModin = 1,
  kDask = 2,
  kShard = 3,  // shared-nothing multi-process executor (src/shard/)
};

const char* BackendKindName(BackendKind kind);

std::unique_ptr<Backend> MakeBackend(BackendKind kind, MemoryTracker* tracker,
                                     const BackendConfig& config);

}  // namespace lafp::exec

#endif  // LAFP_EXEC_BACKEND_H_
