#include "exec/modin_backend.h"

#include <chrono>
#include <limits>
#include <mutex>
#include <thread>

#include "common/macros.h"
#include "common/trace.h"
#include "exec/agg_twophase.h"

namespace lafp::exec {

namespace {

/// Partitioned frame wrapper for Modin values.
class ModinFrame : public BackendFrame {
 public:
  explicit ModinFrame(PartitionedFrame parts) : parts_(std::move(parts)) {}
  const PartitionedFrame& parts() const { return parts_; }

 private:
  PartitionedFrame parts_;
};

Result<const PartitionedFrame*> PartsOf(const BackendValue& value) {
  auto* wrapped = dynamic_cast<ModinFrame*>(value.frame.get());
  if (wrapped == nullptr) {
    return Status::Invalid("foreign frame handle passed to modin backend");
  }
  return &wrapped->parts();
}

BackendValue WrapParts(PartitionedFrame parts) {
  return BackendValue::Frame(std::make_shared<ModinFrame>(std::move(parts)));
}

/// Partition fan-out with cross-thread kernel attribution. Each worker
/// runs `body(i)` with (a) the launcher's span installed as trace context
/// — so the per-partition span, and any kernel spans under it, attribute
/// to the owning scheduler node — and (b) a local KernelCounters sink
/// whose totals are merged back into the launcher's active sink after the
/// join. This is what makes NodeStats::kernel_micros/morsels include work
/// done on partition-pool threads.
template <typename Body>
Status RunPartitions(ThreadPool* pool, size_t np, const char* what,
                     Body&& body) {
  const uint64_t parent = trace::Tracer::CurrentSpanId();
  df::SharedKernelCounters shared;
  Status status = ParallelForStatus(
      pool, static_cast<int>(np), [&](int i) -> Status {
        trace::SpanContextScope ctx(parent);
        trace::Span span("partition", "task");
        if (span.active()) {
          span.AddArg("op", what);
          span.AddArg("partition", i);
        }
        df::KernelCounters local;
        Status s;
        {
          df::KernelCountersScope counters(&local);
          s = body(i);
        }
        shared.Add(local);
        return s;
      });
  df::MergeIntoCurrentSink(shared.Snapshot());
  return status;
}

}  // namespace

ModinBackend::ModinBackend(MemoryTracker* tracker,
                           const BackendConfig& config)
    : Backend(tracker, config),
      owned_pool_(config.shared_pool == nullptr
                      ? std::make_unique<ThreadPool>(config.num_threads)
                      : nullptr),
      work_pool_(config.shared_pool != nullptr ? config.shared_pool
                                               : owned_pool_.get()) {
  if (config_.intra_op_threads >= 1) {
    kernel_ctx_ = df::KernelContext(work_pool_, config_.intra_op_threads,
                                    config_.morsel_rows);
  }
}

void ModinBackend::PayOverhead() const {
  if (config_.task_overhead_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.task_overhead_us));
  }
}

bool ModinBackend::SupportsOp(const OpDesc& desc) const {
  return desc.kind != OpKind::kPrint;
}

Result<BackendValue> ModinBackend::Execute(
    const OpDesc& desc, const std::vector<BackendValue>& inputs) {
  trace::Span span("modin:execute", "backend");
  if (span.active()) span.AddArg("op", desc.ToString());
  switch (desc.kind) {
    case OpKind::kReadCsv: {
      // Partitioned read: chunked, but eager (all partitions in memory).
      LAFP_ASSIGN_OR_RETURN(
          auto reader,
          io::CsvChunkReader::Open(desc.path, desc.csv_options, tracker_));
      PartitionedFrame parts;
      while (true) {
        LAFP_ASSIGN_OR_RETURN(auto chunk,
                              reader->NextChunk(config_.partition_rows));
        if (!chunk.has_value()) break;
        PayOverhead();
        parts.Add(std::move(*chunk));
      }
      if (parts.num_partitions() == 0) {
        LAFP_ASSIGN_OR_RETURN(
            df::DataFrame empty,
            io::ReadCsv(desc.path, desc.csv_options, tracker_));
        parts.Add(std::move(empty));
      }
      return WrapParts(std::move(parts));
    }
    case OpKind::kReadLfc: {
      // Native columnar scan: each surviving LFC chunk becomes one
      // partition. Zone-pruned chunks still consume their share of the
      // nrows quota so the partitioned read matches the eager scan.
      LAFP_ASSIGN_OR_RETURN(auto reader,
                            io::LfcReader::Open(desc.path, tracker_));
      const auto& o = desc.lfc_options;
      LAFP_ASSIGN_OR_RETURN(std::vector<size_t> sel,
                            reader->SelectColumns(o.usecols));
      const bool pruning = o.prune_enabled && !o.prune.empty();
      PartitionedFrame parts;
      uint64_t remaining = o.nrows == 0
                               ? std::numeric_limits<uint64_t>::max()
                               : o.nrows;
      for (size_t chunk = 0; chunk < reader->num_chunks(); ++chunk) {
        if (remaining == 0) break;
        const uint64_t take =
            std::min<uint64_t>(reader->chunk_rows(chunk), remaining);
        remaining -= take;
        if (pruning && !reader->ChunkMayMatch(chunk, o.prune)) continue;
        LAFP_ASSIGN_OR_RETURN(
            df::DataFrame part,
            reader->ReadChunk(chunk, sel, static_cast<size_t>(take)));
        PayOverhead();
        parts.Add(std::move(part));
      }
      if (parts.num_partitions() == 0) {
        LAFP_ASSIGN_OR_RETURN(df::DataFrame empty, reader->EmptyFrame(sel));
        parts.Add(std::move(empty));
      }
      return WrapParts(std::move(parts));
    }
    case OpKind::kGroupByAgg:
      return ExecuteGroupBy(desc, inputs[0]);
    case OpKind::kReduce:
    case OpKind::kLen:
      return ExecuteReduce(desc, inputs[0]);
    case OpKind::kMerge:
      return ExecuteMerge(desc, inputs[0], inputs[1]);
    default:
      if (IsMapOp(desc.kind)) return ExecuteMapOp(desc, inputs);
      return ExecuteViaConcat(desc, inputs);
  }
}

Result<BackendValue> ModinBackend::ExecuteMapOp(
    const OpDesc& desc, const std::vector<BackendValue>& inputs) {
  LAFP_ASSIGN_OR_RETURN(const PartitionedFrame* primary, PartsOf(inputs[0]));
  const PartitionedFrame* secondary = nullptr;
  df::Scalar runtime_scalar;
  bool second_is_scalar = false;
  if (inputs.size() > 1) {
    if (inputs[1].is_scalar) {
      second_is_scalar = true;
      runtime_scalar = inputs[1].scalar;
    } else {
      LAFP_ASSIGN_OR_RETURN(secondary, PartsOf(inputs[1]));
      if (secondary->num_partitions() != primary->num_partitions()) {
        // Misaligned partitioning: run via concat as a correctness
        // fallback.
        return ExecuteViaConcat(desc, inputs);
      }
    }
  }
  size_t np = primary->num_partitions();
  std::vector<df::DataFrame> results(np);
  LAFP_RETURN_NOT_OK(RunPartitions(
      work_pool_, np, "map", [&](int i) -> Status {
        PayOverhead();
        LAFP_ASSIGN_OR_RETURN(df::DataFrame part,
                              primary->partition(i, tracker_));
        std::vector<EagerValue> eager_inputs;
        eager_inputs.push_back(EagerValue::Frame(std::move(part)));
        if (secondary != nullptr) {
          LAFP_ASSIGN_OR_RETURN(df::DataFrame second,
                                secondary->partition(i, tracker_));
          eager_inputs.push_back(EagerValue::Frame(std::move(second)));
        } else if (second_is_scalar) {
          eager_inputs.push_back(EagerValue::FromScalar(runtime_scalar));
        }
        LAFP_ASSIGN_OR_RETURN(EagerValue out,
                              ExecuteEagerOp(desc, eager_inputs, tracker_));
        results[i] = std::move(out.frame);
        return Status::OK();
      }));
  PartitionedFrame out;
  for (auto& r : results) out.Add(std::move(r));
  return WrapParts(std::move(out));
}

Result<BackendValue> ModinBackend::ExecuteGroupBy(
    const OpDesc& desc, const BackendValue& input) {
  LAFP_ASSIGN_OR_RETURN(const PartitionedFrame* parts, PartsOf(input));
  GroupByCombiner combiner(desc.columns, desc.aggs);
  if (!combiner.supported()) {
    return ExecuteViaConcat(desc, {input});
  }
  size_t np = parts->num_partitions();
  // Partial aggregation is parallel; partials are folded in deterministic
  // partition order for reproducible output.
  std::vector<df::DataFrame> partial_inputs(np);
  LAFP_RETURN_NOT_OK(RunPartitions(
      work_pool_, np, "groupby", [&](int i) -> Status {
        PayOverhead();
        LAFP_ASSIGN_OR_RETURN(df::DataFrame part,
                              parts->partition(i, tracker_));
        partial_inputs[i] = std::move(part);
        return Status::OK();
      }));
  for (const auto& part : partial_inputs) {
    LAFP_RETURN_NOT_OK(combiner.AddPartition(part));
  }
  LAFP_ASSIGN_OR_RETURN(df::DataFrame result, combiner.Finish());
  PartitionedFrame out;
  out.Add(std::move(result));
  return WrapParts(std::move(out));
}

Result<BackendValue> ModinBackend::ExecuteReduce(const OpDesc& desc,
                                                 const BackendValue& input) {
  LAFP_ASSIGN_OR_RETURN(const PartitionedFrame* parts, PartsOf(input));
  if (desc.kind == OpKind::kLen) {
    return BackendValue::FromScalar(
        df::Scalar::Int(static_cast<int64_t>(parts->num_rows())));
  }
  ReduceCombiner combiner(desc.agg_func);
  for (size_t i = 0; i < parts->num_partitions(); ++i) {
    PayOverhead();
    LAFP_ASSIGN_OR_RETURN(df::DataFrame part, parts->partition(i, tracker_));
    LAFP_RETURN_NOT_OK(combiner.AddPartition(part));
  }
  LAFP_ASSIGN_OR_RETURN(df::Scalar out, combiner.Finish());
  return BackendValue::FromScalar(std::move(out));
}

Result<BackendValue> ModinBackend::ExecuteMerge(const OpDesc& desc,
                                                const BackendValue& left,
                                                const BackendValue& right) {
  LAFP_ASSIGN_OR_RETURN(const PartitionedFrame* lparts, PartsOf(left));
  LAFP_ASSIGN_OR_RETURN(const PartitionedFrame* rparts, PartsOf(right));
  // Broadcast join: the right side is concatenated and joined against
  // every left partition in parallel.
  LAFP_ASSIGN_OR_RETURN(df::DataFrame right_full, rparts->ToEager(tracker_));
  size_t np = lparts->num_partitions();
  std::vector<df::DataFrame> results(np);
  LAFP_RETURN_NOT_OK(RunPartitions(
      work_pool_, np, "merge", [&](int i) -> Status {
        PayOverhead();
        LAFP_ASSIGN_OR_RETURN(df::DataFrame part,
                              lparts->partition(i, tracker_));
        LAFP_ASSIGN_OR_RETURN(
            df::DataFrame joined,
            df::Merge(part, right_full, desc.columns, desc.join_type));
        results[i] = std::move(joined);
        return Status::OK();
      }));
  PartitionedFrame out;
  for (auto& r : results) out.Add(std::move(r));
  return WrapParts(std::move(out));
}

Result<BackendValue> ModinBackend::ExecuteViaConcat(
    const OpDesc& desc, const std::vector<BackendValue>& inputs) {
  // Whole-frame ops run on the calling (scheduler) thread, so kernel
  // morsels can borrow the partition pool without nesting: its workers
  // never see this thread-local context.
  df::KernelScope kernel_scope(&kernel_ctx_);
  std::vector<EagerValue> eager_inputs;
  for (const auto& in : inputs) {
    LAFP_ASSIGN_OR_RETURN(EagerValue v, Materialize(in));
    eager_inputs.push_back(std::move(v));
  }
  PayOverhead();
  LAFP_ASSIGN_OR_RETURN(EagerValue out,
                        ExecuteEagerOp(desc, eager_inputs, tracker_));
  return FromEager(out);
}

Result<EagerValue> ModinBackend::Materialize(const BackendValue& value) {
  if (value.is_scalar) return EagerValue::FromScalar(value.scalar);
  LAFP_ASSIGN_OR_RETURN(const PartitionedFrame* parts, PartsOf(value));
  LAFP_ASSIGN_OR_RETURN(df::DataFrame frame, parts->ToEager(tracker_));
  return EagerValue::Frame(std::move(frame));
}

Result<BackendValue> ModinBackend::FromEager(const EagerValue& value) {
  if (value.is_scalar) return BackendValue::FromScalar(value.scalar);
  LAFP_ASSIGN_OR_RETURN(
      PartitionedFrame parts,
      PartitionedFrame::FromEager(value.frame, config_.partition_rows));
  return WrapParts(std::move(parts));
}

int64_t ModinBackend::RowCount(const BackendValue& value) const {
  if (value.is_scalar) return 1;
  auto* wrapped = dynamic_cast<ModinFrame*>(value.frame.get());
  if (wrapped == nullptr) return -1;
  return static_cast<int64_t>(wrapped->parts().num_rows());
}

}  // namespace lafp::exec
