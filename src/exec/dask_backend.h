#ifndef LAFP_EXEC_DASK_BACKEND_H_
#define LAFP_EXEC_DASK_BACKEND_H_

#include <memory>
#include <vector>

#include "exec/backend.h"
#include "exec/partition.h"

namespace lafp::exec {

namespace internal {
struct DaskNode;
class DaskEvaluator;
}  // namespace internal

/// Lazy, partitioned, out-of-core engine modeled on Dask.
///
/// Execute() merely records plan nodes ("creates an operator DAG in the
/// backend framework", paper §2.5); Materialize() evaluates the plan by
/// streaming partitions:
///   - chains of row-wise ops are fused and evaluated one partition at a
///     time (bounded memory regardless of dataset size);
///   - group-bys and reductions fold partitions through two-phase
///     combiners;
///   - merge broadcasts the right side (a deliberate materialization
///     point that can OOM, as in the paper's failure cases);
///   - the final result is concatenated into an eager frame — the other
///     OOM point when a program materializes something dataset-sized.
///
/// Like Dask, row order across shuffling ops is not guaranteed, results
/// are recomputed on every Materialize unless Persist() was requested, and
/// persisted collections are memory-resident (paper §5.4 notes disk
/// persistence as future work; config.spill_persisted enables that
/// extension here).
class DaskBackend : public Backend {
 public:
  DaskBackend(MemoryTracker* tracker, const BackendConfig& config);
  ~DaskBackend() override;

  const char* name() const override { return "dask"; }
  bool lazy() const override { return true; }
  bool preserves_row_order() const override { return false; }
  bool SupportsOp(const OpDesc& desc) const override;

  Result<BackendValue> Execute(
      const OpDesc& desc, const std::vector<BackendValue>& inputs) override;
  Result<EagerValue> Materialize(const BackendValue& value) override;
  Result<BackendValue> FromEager(const EagerValue& value) override;
  Status Persist(const BackendValue& value) override;
  Status Unpersist(const BackendValue& value) override;

 private:
  friend class internal::DaskEvaluator;

  std::string spill_dir_;
  std::string spill_fallback_dir_;
  // True when the directories above are generated defaults owned by this
  // instance; they are deleted on destruction. Configured dirs are kept.
  bool owns_spill_dir_ = false;
  bool owns_spill_fallback_dir_ = false;
  int64_t spill_counter_ = 0;
};

}  // namespace lafp::exec

#endif  // LAFP_EXEC_DASK_BACKEND_H_
