#include "exec/pandas_backend.h"

#include "common/macros.h"
#include "common/trace.h"

namespace lafp::exec {

namespace {

/// Eager frame wrapper.
class EagerBackendFrame : public BackendFrame {
 public:
  explicit EagerBackendFrame(df::DataFrame frame)
      : frame_(std::move(frame)) {}
  const df::DataFrame& frame() const { return frame_; }

 private:
  df::DataFrame frame_;
};

}  // namespace

PandasBackend::PandasBackend(MemoryTracker* tracker,
                             const BackendConfig& config)
    : Backend(tracker, config) {
  // Morsel workers come from the injected shared pool when one is
  // configured (query server: one pool for every session's kernels);
  // otherwise the backend owns a private pool.
  ThreadPool* pool = nullptr;
  if (config_.intra_op_threads > 1) {
    if (config_.shared_pool != nullptr) {
      pool = config_.shared_pool;
    } else {
      kernel_pool_ = std::make_unique<ThreadPool>(config_.intra_op_threads);
      pool = kernel_pool_.get();
    }
  }
  if (config_.intra_op_threads >= 1) {
    kernel_ctx_ = df::KernelContext(pool, config_.intra_op_threads,
                                    config_.morsel_rows);
  }
}

bool PandasBackend::SupportsOp(const OpDesc& desc) const {
  return desc.kind != OpKind::kPrint;  // print handled by the session
}

Result<BackendValue> PandasBackend::Execute(
    const OpDesc& desc, const std::vector<BackendValue>& inputs) {
  trace::Span span("pandas:execute", "backend");
  if (span.active()) span.AddArg("op", desc.ToString());
  df::KernelScope kernel_scope(&kernel_ctx_);
  std::vector<EagerValue> eager_inputs;
  eager_inputs.reserve(inputs.size());
  for (const auto& in : inputs) {
    LAFP_ASSIGN_OR_RETURN(EagerValue v, Materialize(in));
    eager_inputs.push_back(std::move(v));
  }
  LAFP_ASSIGN_OR_RETURN(EagerValue out,
                        ExecuteEagerOp(desc, eager_inputs, tracker_));
  return FromEager(out);
}

Result<EagerValue> PandasBackend::Materialize(const BackendValue& value) {
  if (value.is_scalar) return EagerValue::FromScalar(value.scalar);
  auto* wrapped = dynamic_cast<EagerBackendFrame*>(value.frame.get());
  if (wrapped == nullptr) {
    return Status::Invalid("foreign frame handle passed to pandas backend");
  }
  return EagerValue::Frame(wrapped->frame());
}

Result<BackendValue> PandasBackend::FromEager(const EagerValue& value) {
  if (value.is_scalar) return BackendValue::FromScalar(value.scalar);
  return BackendValue::Frame(
      std::make_shared<EagerBackendFrame>(value.frame));
}

int64_t PandasBackend::RowCount(const BackendValue& value) const {
  if (value.is_scalar) return 1;
  auto* wrapped = dynamic_cast<EagerBackendFrame*>(value.frame.get());
  if (wrapped == nullptr) return -1;
  return static_cast<int64_t>(wrapped->frame().num_rows());
}

}  // namespace lafp::exec
