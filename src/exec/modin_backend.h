#ifndef LAFP_EXEC_MODIN_BACKEND_H_
#define LAFP_EXEC_MODIN_BACKEND_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "dataframe/kernel_context.h"
#include "exec/backend.h"
#include "exec/partition.h"

namespace lafp::exec {

/// Eager, partition-parallel engine modeled on Modin: data is split into
/// row partitions, map ops run on a thread pool, aggregations run in two
/// phases. All partitions stay in (tracked) memory — like Modin it scales
/// CPU, not memory — and every partition task pays a simulated dispatch
/// overhead (config.task_overhead_us), which is why it trails plain
/// Pandas at small sizes (paper Fig. 13).
///
/// Thread-safe for concurrent Execute calls (the DAG scheduler's
/// contract): the only shared state is the partition pool, whose queue is
/// mutex-protected, and each ParallelFor call synchronizes its own
/// completion — so two scheduler workers can run partitioned ops on the
/// same pool simultaneously. The pool is distinct from the scheduler's,
/// so a scheduler worker blocking in ParallelFor cannot starve it.
///
/// Intra-operator kernel parallelism shares that same partition pool (no
/// second pool, no oversubscription): ops that run on the concatenated
/// frame install a df::KernelContext over pool_ so their kernel loops go
/// morsel-parallel, while partitioned ops keep their parallelism at the
/// partition level — the kernel context is thread-local and does not
/// propagate into pool workers, so per-partition kernels stay serial
/// instead of forking nested morsel tasks onto the pool they run on.
class ModinBackend : public Backend {
 public:
  ModinBackend(MemoryTracker* tracker, const BackendConfig& config);

  const char* name() const override { return "modin"; }
  bool preserves_row_order() const override { return true; }
  bool SupportsOp(const OpDesc& desc) const override;

  Result<BackendValue> Execute(
      const OpDesc& desc, const std::vector<BackendValue>& inputs) override;
  Result<EagerValue> Materialize(const BackendValue& value) override;
  Result<BackendValue> FromEager(const EagerValue& value) override;
  int64_t RowCount(const BackendValue& value) const override;

 private:
  /// One partition task's simulated scheduling cost.
  void PayOverhead() const;

  Result<BackendValue> ExecuteMapOp(const OpDesc& desc,
                                    const std::vector<BackendValue>& inputs);
  Result<BackendValue> ExecuteGroupBy(const OpDesc& desc,
                                      const BackendValue& input);
  Result<BackendValue> ExecuteReduce(const OpDesc& desc,
                                     const BackendValue& input);
  Result<BackendValue> ExecuteMerge(const OpDesc& desc,
                                    const BackendValue& left,
                                    const BackendValue& right);
  /// Ops without a partitioned algorithm (sort, describe, ...) run on the
  /// concatenated frame, then re-partition — cheap since Modin is
  /// in-memory anyway.
  Result<BackendValue> ExecuteViaConcat(
      const OpDesc& desc, const std::vector<BackendValue>& inputs);

  /// Owned only when no shared pool was injected
  /// (BackendConfig::shared_pool); work_pool_ is what partition ops use.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* work_pool_;
  df::KernelContext kernel_ctx_;  // over work_pool_; default if knob is 0
};

}  // namespace lafp::exec

#endif  // LAFP_EXEC_MODIN_BACKEND_H_
