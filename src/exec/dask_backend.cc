#include "exec/dask_backend.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <filesystem>
#include <limits>
#include <thread>
#include <unordered_map>

#include "common/macros.h"
#include "common/trace.h"
#include "dataframe/kahan.h"
#include "exec/agg_twophase.h"

namespace lafp::exec {

namespace internal {

/// One node of the Dask plan DAG.
struct DaskNode : public BackendFrame {
  OpDesc desc;
  std::vector<std::shared_ptr<DaskNode>> inputs;
  bool produces_scalar = false;
  bool persist_requested = false;

  // Caches surviving across Materialize calls (persist, §3.5). Memory
  // resident by design unless the spill extension is enabled.
  std::shared_ptr<PartitionedFrame> persisted;
  std::shared_ptr<df::Scalar> persisted_scalar;
};

using DaskNodePtr = std::shared_ptr<DaskNode>;

namespace {

Result<DaskNodePtr> NodeOf(const BackendValue& value) {
  auto node = std::dynamic_pointer_cast<DaskNode>(value.frame);
  if (node == nullptr) {
    return Status::Invalid("foreign frame handle passed to dask backend");
  }
  return node;
}

/// Pull-based stream of partitions.
class PartitionStream {
 public:
  virtual ~PartitionStream() = default;
  /// Next partition, or nullopt at end.
  virtual Result<std::optional<df::DataFrame>> Next() = 0;
};

class PartitionedFrameStream : public PartitionStream {
 public:
  PartitionedFrameStream(std::shared_ptr<PartitionedFrame> parts,
                         MemoryTracker* tracker)
      : parts_(std::move(parts)), tracker_(tracker) {}

  Result<std::optional<df::DataFrame>> Next() override {
    if (idx_ >= parts_->num_partitions()) {
      return std::optional<df::DataFrame>();
    }
    LAFP_ASSIGN_OR_RETURN(df::DataFrame part,
                          parts_->partition(idx_++, tracker_));
    return std::optional<df::DataFrame>(std::move(part));
  }

 private:
  std::shared_ptr<PartitionedFrame> parts_;
  MemoryTracker* tracker_;
  size_t idx_ = 0;
};

class CsvStream : public PartitionStream {
 public:
  CsvStream(std::unique_ptr<io::CsvChunkReader> reader, size_t chunk_rows,
            int64_t overhead_us, size_t prefetch, MemoryTracker* tracker)
      : reader_(std::move(reader)),
        chunk_rows_(chunk_rows),
        overhead_us_(overhead_us),
        prefetch_(prefetch == 0 ? 1 : prefetch),
        tracker_(tracker) {}

  Result<std::optional<df::DataFrame>> Next() override {
    // Keep a window of decoded partitions resident, like Dask workers
    // that prefetch blocks for their task pool.
    while (!eof_ && buffer_.size() < prefetch_) {
      if (overhead_us_ > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(overhead_us_));
      }
      LAFP_ASSIGN_OR_RETURN(auto chunk, reader_->NextChunk(chunk_rows_));
      if (!chunk.has_value()) {
        eof_ = true;
        break;
      }
      buffer_.push_back(std::move(*chunk));
      ++emitted_;
    }
    if (buffer_.empty()) {
      // A header-only file yields no chunks. Emit one empty partition
      // carrying the inferred schema: downstream merges/filters resolve
      // columns by name and must not see a schemaless frame.
      if (emitted_ == 0 && !empty_emitted_) {
        empty_emitted_ = true;
        const auto& names = reader_->column_names();
        const auto& types = reader_->column_types();
        std::vector<df::ColumnPtr> cols;
        cols.reserve(names.size());
        for (size_t c = 0; c < names.size(); ++c) {
          df::ColumnBuilder builder(types[c], tracker_);
          LAFP_ASSIGN_OR_RETURN(df::ColumnPtr col, builder.Finish());
          cols.push_back(std::move(col));
        }
        LAFP_ASSIGN_OR_RETURN(df::DataFrame empty,
                              df::DataFrame::Make(names, std::move(cols)));
        return std::optional<df::DataFrame>(std::move(empty));
      }
      return std::optional<df::DataFrame>();
    }
    df::DataFrame out = std::move(buffer_.front());
    buffer_.pop_front();
    return std::optional<df::DataFrame>(std::move(out));
  }

 private:
  std::unique_ptr<io::CsvChunkReader> reader_;
  size_t chunk_rows_;
  int64_t overhead_us_;
  size_t prefetch_;
  MemoryTracker* tracker_;
  std::deque<df::DataFrame> buffer_;
  size_t emitted_ = 0;
  bool empty_emitted_ = false;
  bool eof_ = false;
};

class LfcStream : public PartitionStream {
 public:
  // The reader already carries the MemoryTracker it was opened with, so
  // the stream needs no tracker of its own.
  LfcStream(std::unique_ptr<io::LfcReader> reader, io::LfcReadOptions options,
            int64_t overhead_us)
      : reader_(std::move(reader)),
        options_(std::move(options)),
        overhead_us_(overhead_us),
        remaining_(options_.nrows == 0 ? std::numeric_limits<uint64_t>::max()
                                       : options_.nrows) {}

  Result<std::optional<df::DataFrame>> Next() override {
    if (!resolved_) {
      LAFP_ASSIGN_OR_RETURN(sel_, reader_->SelectColumns(options_.usecols));
      resolved_ = true;
    }
    // One surviving LFC chunk per partition; pruned chunks still consume
    // their slice of the nrows quota (matches the eager scan exactly).
    const bool pruning = options_.prune_enabled && !options_.prune.empty();
    while (chunk_ < reader_->num_chunks() && remaining_ > 0) {
      const size_t chunk = chunk_++;
      const uint64_t take =
          std::min<uint64_t>(reader_->chunk_rows(chunk), remaining_);
      remaining_ -= take;
      if (pruning && !reader_->ChunkMayMatch(chunk, options_.prune)) {
        continue;
      }
      if (overhead_us_ > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(overhead_us_));
      }
      ++emitted_;
      LAFP_ASSIGN_OR_RETURN(
          df::DataFrame part,
          reader_->ReadChunk(chunk, sel_, static_cast<size_t>(take)));
      return std::optional<df::DataFrame>(std::move(part));
    }
    if (emitted_ == 0 && !empty_emitted_) {
      // All chunks pruned (or an empty file): emit one empty partition
      // carrying the projected schema, like the header-only CSV case.
      empty_emitted_ = true;
      LAFP_ASSIGN_OR_RETURN(df::DataFrame empty, reader_->EmptyFrame(sel_));
      return std::optional<df::DataFrame>(std::move(empty));
    }
    return std::optional<df::DataFrame>();
  }

 private:
  std::unique_ptr<io::LfcReader> reader_;
  io::LfcReadOptions options_;
  int64_t overhead_us_;
  std::vector<size_t> sel_;
  bool resolved_ = false;
  size_t chunk_ = 0;
  uint64_t remaining_;
  size_t emitted_ = 0;
  bool empty_emitted_ = false;
};

class SingleFrameStream : public PartitionStream {
 public:
  explicit SingleFrameStream(df::DataFrame frame)
      : frame_(std::move(frame)) {}

  Result<std::optional<df::DataFrame>> Next() override {
    if (done_) return std::optional<df::DataFrame>();
    done_ = true;
    return std::optional<df::DataFrame>(std::move(frame_));
  }

 private:
  df::DataFrame frame_;
  bool done_ = false;
};

}  // namespace

/// Per-Materialize evaluator. Holds memoized results of non-row-wise
/// nodes so a node shared within one compute is evaluated once (as in
/// Dask); results are NOT retained across Materialize calls unless the
/// node is persisted — re-computation across forced computes is exactly
/// what the paper's common-computation-reuse optimization targets.
class DaskEvaluator {
 public:
  explicit DaskEvaluator(DaskBackend* backend)
      : backend_(backend), tracker_(backend->tracker()) {}

  Result<EagerValue> MaterializeNode(const DaskNodePtr& node) {
    if (node->produces_scalar) {
      LAFP_ASSIGN_OR_RETURN(df::Scalar s, EvalScalar(node));
      return EagerValue::FromScalar(std::move(s));
    }
    LAFP_ASSIGN_OR_RETURN(auto stream, Stream(node));
    std::vector<df::DataFrame> parts;
    while (true) {
      LAFP_ASSIGN_OR_RETURN(auto part, stream->Next());
      if (!part.has_value()) break;
      parts.push_back(std::move(*part));
    }
    if (parts.empty()) return EagerValue::Frame(df::DataFrame());
    if (parts.size() == 1) return EagerValue::Frame(std::move(parts[0]));
    LAFP_ASSIGN_OR_RETURN(df::DataFrame all, df::Concat(parts));
    return EagerValue::Frame(std::move(all));
  }

  Result<df::Scalar> EvalScalar(const DaskNodePtr& node) {
    if (node->persisted_scalar != nullptr) return *node->persisted_scalar;
    auto memo = scalar_memo_.find(node.get());
    if (memo != scalar_memo_.end()) return memo->second;

    df::Scalar out;
    if (node->desc.kind == OpKind::kReduce) {
      LAFP_ASSIGN_OR_RETURN(auto stream, Stream(node->inputs[0]));
      ReduceCombiner combiner(node->desc.agg_func);
      while (true) {
        LAFP_ASSIGN_OR_RETURN(auto part, stream->Next());
        if (!part.has_value()) break;
        LAFP_RETURN_NOT_OK(combiner.AddPartition(*part));
      }
      LAFP_ASSIGN_OR_RETURN(out, combiner.Finish());
    } else if (node->desc.kind == OpKind::kLen) {
      LAFP_ASSIGN_OR_RETURN(auto stream, Stream(node->inputs[0]));
      int64_t rows = 0;
      while (true) {
        LAFP_ASSIGN_OR_RETURN(auto part, stream->Next());
        if (!part.has_value()) break;
        rows += static_cast<int64_t>(part->num_rows());
      }
      out = df::Scalar::Int(rows);
    } else {
      return Status::Invalid("node does not produce a scalar");
    }
    scalar_memo_[node.get()] = out;
    if (node->persist_requested) {
      node->persisted_scalar = std::make_shared<df::Scalar>(out);
    }
    return out;
  }

  MemoryTracker* tracker() const { return tracker_; }

  void PayOverhead() {
    if (backend_->config().task_overhead_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(backend_->config().task_overhead_us));
    }
  }

  /// Stream of partitions for a frame-producing node.
  Result<std::unique_ptr<PartitionStream>> Stream(const DaskNodePtr& node) {
    if (node->produces_scalar) {
      return Status::Invalid("cannot stream a scalar node");
    }
    if (node->persisted != nullptr) {
      return std::unique_ptr<PartitionStream>(
          std::make_unique<PartitionedFrameStream>(node->persisted,
                                                   tracker_));
    }
    auto memo = collected_.find(node.get());
    if (memo != collected_.end()) {
      return std::unique_ptr<PartitionStream>(
          std::make_unique<PartitionedFrameStream>(memo->second, tracker_));
    }
    if (node->persist_requested) {
      // Collect once, cache across materializations, then stream the
      // cache. With the §5.4 disk extension, partitions spill as they
      // arrive so the collection never holds more than one in memory.
      LAFP_ASSIGN_OR_RETURN(auto inner, StreamInner(node));
      const bool spill = backend_->config().spill_persisted;
      std::string prefix =
          "persist" + std::to_string(backend_->spill_counter_++);
      auto collected = std::make_shared<PartitionedFrame>();
      while (true) {
        LAFP_ASSIGN_OR_RETURN(auto part, inner->Next());
        if (!part.has_value()) break;
        collected->Add(std::move(*part));
        if (spill) {
          size_t i = collected->num_partitions() - 1;
          const std::string part_name = prefix + "_" + std::to_string(i);
          Status spilled = collected->SpillPartition(
              i, backend_->spill_dir_, part_name);
          if (!spilled.ok() &&
              backend_->spill_fallback_dir_ != backend_->spill_dir_) {
            // Graceful degradation: a full or dead spill device should
            // not abort the round when an alternate directory is
            // configured. SpillPartition is retry-safe — the partition
            // stays in memory until a write fully succeeds.
            spilled = collected->SpillPartition(
                i, backend_->spill_fallback_dir_, part_name);
          }
          LAFP_RETURN_NOT_OK(spilled);
        }
      }
      node->persisted = collected;
      return std::unique_ptr<PartitionStream>(
          std::make_unique<PartitionedFrameStream>(collected, tracker_));
    }
    return StreamInner(node);
  }

 private:
  Result<std::shared_ptr<PartitionedFrame>> Collect(
      std::unique_ptr<PartitionStream> stream) {
    auto out = std::make_shared<PartitionedFrame>();
    while (true) {
      LAFP_ASSIGN_OR_RETURN(auto part, stream->Next());
      if (!part.has_value()) break;
      out->Add(std::move(*part));
    }
    return out;
  }

  /// Collect a node fully into an eager frame (an internal
  /// materialization point: merge broadcast sides, fallback inputs).
  Result<df::DataFrame> CollectEager(const DaskNodePtr& node) {
    LAFP_ASSIGN_OR_RETURN(EagerValue v, MaterializeNode(node));
    return v.frame;
  }

  Result<std::unique_ptr<PartitionStream>> StreamInner(
      const DaskNodePtr& node);

  /// Memoize a small, fully evaluated result for this Materialize call.
  std::unique_ptr<PartitionStream> MemoizeSingle(const DaskNodePtr& node,
                                                 df::DataFrame result) {
    auto parts = std::make_shared<PartitionedFrame>();
    parts->Add(std::move(result));
    collected_[node.get()] = parts;
    return std::make_unique<PartitionedFrameStream>(parts, tracker_);
  }

  DaskBackend* backend_;
  MemoryTracker* tracker_;
  std::unordered_map<DaskNode*, std::shared_ptr<PartitionedFrame>>
      collected_;
  std::unordered_map<DaskNode*, df::Scalar> scalar_memo_;
};

namespace {

/// Stream over a fused blockwise zone: a maximal subgraph of row-wise ops
/// rooted at `root`. Each Next() pulls one aligned partition from every
/// zone source and evaluates the zone's ops on it — Dask-style operator
/// fusion, the reason chains of filters/projections run in constant
/// memory.
class ZoneStream : public PartitionStream {
 public:
  static Result<std::unique_ptr<PartitionStream>> Make(
      DaskEvaluator* eval, const DaskNodePtr& root);

  Result<std::optional<df::DataFrame>> Next() override;

 private:
  ZoneStream(DaskEvaluator* eval, DaskNodePtr root)
      : eval_(eval), root_(std::move(root)) {}

  Status Discover(const DaskNodePtr& node);
  Result<df::DataFrame> EvalRec(
      const DaskNodePtr& node,
      std::unordered_map<DaskNode*, df::DataFrame>* memo);

  bool InZone(const DaskNodePtr& node) const {
    return zone_.count(node.get()) > 0;
  }

  DaskEvaluator* eval_;
  DaskNodePtr root_;
  std::unordered_map<DaskNode*, bool> zone_;  // nodes evaluated per partition
  std::vector<DaskNodePtr> sources_;
  std::vector<std::unique_ptr<PartitionStream>> source_streams_;
  std::unordered_map<DaskNode*, df::Scalar> scalar_inputs_;
  bool exhausted_ = false;
};

Result<std::unique_ptr<PartitionStream>> ZoneStream::Make(
    DaskEvaluator* eval, const DaskNodePtr& root) {
  auto stream =
      std::unique_ptr<ZoneStream>(new ZoneStream(eval, root));
  LAFP_RETURN_NOT_OK(stream->Discover(root));
  for (const auto& src : stream->sources_) {
    LAFP_ASSIGN_OR_RETURN(auto s, eval->Stream(src));
    stream->source_streams_.push_back(std::move(s));
  }
  return std::unique_ptr<PartitionStream>(std::move(stream));
}

Status ZoneStream::Discover(const DaskNodePtr& node) {
  if (zone_.count(node.get()) > 0) return Status::OK();
  bool fusable = IsMapOp(node->desc.kind) &&
                 (node == root_ || (!node->persist_requested &&
                                    node->persisted == nullptr));
  if (!fusable) {
    if (node->produces_scalar) {
      LAFP_ASSIGN_OR_RETURN(df::Scalar s, eval_->EvalScalar(node));
      scalar_inputs_[node.get()] = std::move(s);
      return Status::OK();
    }
    // Partition source (read_csv, reduction output, merge output,
    // persisted node, ...).
    for (const auto& existing : sources_) {
      if (existing == node) return Status::OK();
    }
    sources_.push_back(node);
    return Status::OK();
  }
  zone_[node.get()] = true;
  for (const auto& in : node->inputs) {
    LAFP_RETURN_NOT_OK(Discover(in));
  }
  return Status::OK();
}

Result<std::optional<df::DataFrame>> ZoneStream::Next() {
  if (exhausted_) return std::optional<df::DataFrame>();
  std::unordered_map<DaskNode*, df::DataFrame> memo;
  size_t ended = 0;
  for (size_t i = 0; i < sources_.size(); ++i) {
    LAFP_ASSIGN_OR_RETURN(auto part, source_streams_[i]->Next());
    if (!part.has_value()) {
      ++ended;
      continue;
    }
    memo[sources_[i].get()] = std::move(*part);
  }
  if (ended == sources_.size() || sources_.empty()) {
    exhausted_ = true;
    return std::optional<df::DataFrame>();
  }
  if (ended > 0) {
    return Status::ExecutionError(
        "misaligned partitioning between fused inputs");
  }
  LAFP_ASSIGN_OR_RETURN(df::DataFrame out, EvalRec(root_, &memo));
  return std::optional<df::DataFrame>(std::move(out));
}

Result<df::DataFrame> ZoneStream::EvalRec(
    const DaskNodePtr& node,
    std::unordered_map<DaskNode*, df::DataFrame>* memo) {
  auto it = memo->find(node.get());
  if (it != memo->end()) return it->second;
  std::vector<EagerValue> inputs;
  for (const auto& in : node->inputs) {
    auto scalar_it = scalar_inputs_.find(in.get());
    if (scalar_it != scalar_inputs_.end()) {
      inputs.push_back(EagerValue::FromScalar(scalar_it->second));
      continue;
    }
    LAFP_ASSIGN_OR_RETURN(df::DataFrame frame, EvalRec(in, memo));
    inputs.push_back(EagerValue::Frame(std::move(frame)));
  }
  eval_->PayOverhead();
  LAFP_ASSIGN_OR_RETURN(EagerValue out,
                        ExecuteEagerOp(node->desc, inputs,
                                       eval_->tracker()));
  if (out.is_scalar) {
    return Status::ExecutionError("map op unexpectedly produced a scalar");
  }
  (*memo)[node.get()] = out.frame;
  return out.frame;
}

/// Sequential chaining of input streams (pd.concat): partitions of the
/// first input, then the second, and so on.
class ChainStream : public PartitionStream {
 public:
  explicit ChainStream(std::vector<std::unique_ptr<PartitionStream>> streams)
      : streams_(std::move(streams)) {}

  Result<std::optional<df::DataFrame>> Next() override {
    while (index_ < streams_.size()) {
      LAFP_ASSIGN_OR_RETURN(auto part, streams_[index_]->Next());
      if (part.has_value()) return part;
      ++index_;
    }
    return std::optional<df::DataFrame>();
  }

 private:
  std::vector<std::unique_ptr<PartitionStream>> streams_;
  size_t index_ = 0;
};

/// Broadcast hash join: the right side is fully materialized once, the
/// left side streams through.
class MergeStream : public PartitionStream {
 public:
  MergeStream(DaskEvaluator* eval, OpDesc desc,
              std::unique_ptr<PartitionStream> left, df::DataFrame right)
      : eval_(eval),
        desc_(std::move(desc)),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Result<std::optional<df::DataFrame>> Next() override {
    LAFP_ASSIGN_OR_RETURN(auto part, left_->Next());
    if (!part.has_value()) return std::optional<df::DataFrame>();
    eval_->PayOverhead();
    LAFP_ASSIGN_OR_RETURN(
        df::DataFrame joined,
        df::Merge(*part, right_, desc_.columns, desc_.join_type));
    return std::optional<df::DataFrame>(std::move(joined));
  }

 private:
  DaskEvaluator* eval_;
  OpDesc desc_;
  std::unique_ptr<PartitionStream> left_;
  df::DataFrame right_;
};

}  // namespace

Result<std::unique_ptr<PartitionStream>> DaskEvaluator::StreamInner(
    const DaskNodePtr& node) {
  const OpDesc& desc = node->desc;
  switch (desc.kind) {
    case OpKind::kReadCsv: {
      LAFP_ASSIGN_OR_RETURN(
          auto reader,
          io::CsvChunkReader::Open(desc.path, desc.csv_options, tracker_));
      return std::unique_ptr<PartitionStream>(std::make_unique<CsvStream>(
          std::move(reader), backend_->config().partition_rows,
          backend_->config().task_overhead_us,
          backend_->config().prefetch_partitions, tracker_));
    }
    case OpKind::kReadLfc: {
      LAFP_ASSIGN_OR_RETURN(auto reader,
                            io::LfcReader::Open(desc.path, tracker_));
      return std::unique_ptr<PartitionStream>(std::make_unique<LfcStream>(
          std::move(reader), desc.lfc_options,
          backend_->config().task_overhead_us));
    }
    case OpKind::kGroupByAgg: {
      GroupByCombiner combiner(desc.columns, desc.aggs);
      if (!combiner.supported()) {
        // nunique: single-node aggregation over the collected input.
        LAFP_ASSIGN_OR_RETURN(df::DataFrame input,
                              CollectEager(node->inputs[0]));
        PayOverhead();
        LAFP_ASSIGN_OR_RETURN(
            df::DataFrame out,
            df::GroupByAgg(input, desc.columns, desc.aggs));
        return MemoizeSingle(node, std::move(out));
      }
      LAFP_ASSIGN_OR_RETURN(auto stream, Stream(node->inputs[0]));
      while (true) {
        LAFP_ASSIGN_OR_RETURN(auto part, stream->Next());
        if (!part.has_value()) break;
        PayOverhead();
        LAFP_RETURN_NOT_OK(combiner.AddPartition(*part));
      }
      LAFP_ASSIGN_OR_RETURN(df::DataFrame out, combiner.Finish());
      return MemoizeSingle(node, std::move(out));
    }
    case OpKind::kConcat: {
      std::vector<std::unique_ptr<PartitionStream>> streams;
      for (const auto& in : node->inputs) {
        LAFP_ASSIGN_OR_RETURN(auto s, Stream(in));
        streams.push_back(std::move(s));
      }
      return std::unique_ptr<PartitionStream>(
          std::make_unique<ChainStream>(std::move(streams)));
    }
    case OpKind::kMerge: {
      LAFP_ASSIGN_OR_RETURN(auto left, Stream(node->inputs[0]));
      // Broadcast: the right side is materialized (tracked; a deliberate
      // potential OOM point, mirroring real Dask broadcast joins).
      LAFP_ASSIGN_OR_RETURN(df::DataFrame right,
                            CollectEager(node->inputs[1]));
      return std::unique_ptr<PartitionStream>(std::make_unique<MergeStream>(
          this, desc, std::move(left), std::move(right)));
    }
    case OpKind::kHead: {
      LAFP_ASSIGN_OR_RETURN(auto stream, Stream(node->inputs[0]));
      std::vector<df::DataFrame> got;
      size_t rows = 0;
      while (rows < desc.n) {
        LAFP_ASSIGN_OR_RETURN(auto part, stream->Next());
        if (!part.has_value()) break;
        size_t want = desc.n - rows;
        if (part->num_rows() > want) {
          LAFP_ASSIGN_OR_RETURN(df::DataFrame cut, part->SliceRows(0, want));
          got.push_back(std::move(cut));
          rows += want;
        } else {
          rows += part->num_rows();
          got.push_back(std::move(*part));
        }
      }
      df::DataFrame out;
      if (got.size() == 1) {
        out = std::move(got[0]);
      } else if (!got.empty()) {
        LAFP_ASSIGN_OR_RETURN(out, df::Concat(got));
      }
      return MemoizeSingle(node, std::move(out));
    }
    case OpKind::kValueCounts: {
      LAFP_ASSIGN_OR_RETURN(auto stream, Stream(node->inputs[0]));
      std::vector<df::DataFrame> partials;
      std::string value_name = "value";
      while (true) {
        LAFP_ASSIGN_OR_RETURN(auto part, stream->Next());
        if (!part.has_value()) break;
        PayOverhead();
        if (part->num_columns() != 1) {
          return Status::TypeError("value_counts expects a series");
        }
        value_name = part->names()[0];
        LAFP_ASSIGN_OR_RETURN(
            df::DataFrame vc,
            df::ValueCounts(*part->column(size_t{0}), value_name));
        partials.push_back(std::move(vc));
      }
      if (partials.empty()) return MemoizeSingle(node, df::DataFrame());
      LAFP_ASSIGN_OR_RETURN(df::DataFrame all, df::Concat(partials));
      LAFP_ASSIGN_OR_RETURN(
          df::DataFrame combined,
          df::GroupByAgg(all, {value_name},
                         {{"count", df::AggFunc::kSum, "count"}}));
      LAFP_ASSIGN_OR_RETURN(
          df::DataFrame sorted,
          df::SortValues(combined, {"count", value_name}, {false, true}));
      return MemoizeSingle(node, std::move(sorted));
    }
    case OpKind::kDescribe: {
      // Single-pass distributed describe: fold count/sum/sumsq/min/max.
      LAFP_ASSIGN_OR_RETURN(auto stream, Stream(node->inputs[0]));
      std::vector<std::string> col_names;
      std::vector<df::KahanSum> sum, sumsq;
      std::vector<double> mn, mx;
      std::vector<int64_t> count;
      bool initialized = false;
      while (true) {
        LAFP_ASSIGN_OR_RETURN(auto part, stream->Next());
        if (!part.has_value()) break;
        PayOverhead();
        if (!initialized) {
          for (size_t c = 0; c < part->num_columns(); ++c) {
            if (!df::IsNumeric(part->column(c)->type())) continue;
            col_names.push_back(part->names()[c]);
          }
          sum.assign(col_names.size(), df::KahanSum());
          sumsq.assign(col_names.size(), df::KahanSum());
          count.assign(col_names.size(), 0);
          mn.assign(col_names.size(),
                    std::numeric_limits<double>::infinity());
          mx.assign(col_names.size(),
                    -std::numeric_limits<double>::infinity());
          initialized = true;
        }
        for (size_t k = 0; k < col_names.size(); ++k) {
          LAFP_ASSIGN_OR_RETURN(df::ColumnPtr col,
                                part->column(col_names[k]));
          for (size_t r = 0; r < col->size(); ++r) {
            if (!col->IsValid(r)) continue;
            LAFP_ASSIGN_OR_RETURN(double v, col->NumericAt(r));
            if (std::isnan(v)) continue;
            sum[k].Add(v);
            sumsq[k].Add(v * v);
            ++count[k];
            mn[k] = std::min(mn[k], v);
            mx[k] = std::max(mx[k], v);
          }
        }
      }
      std::vector<std::string> out_names{"stat"};
      std::vector<df::ColumnPtr> out_cols;
      {
        df::ColumnBuilder stat(df::DataType::kString, tracker_);
        for (const char* s : {"count", "mean", "std", "min", "max"}) {
          stat.AppendString(s);
        }
        LAFP_ASSIGN_OR_RETURN(df::ColumnPtr c, stat.Finish());
        out_cols.push_back(std::move(c));
      }
      for (size_t k = 0; k < col_names.size(); ++k) {
        df::ColumnBuilder b(df::DataType::kDouble, tracker_);
        double total = sum[k].Total();
        double total_sq = sumsq[k].Total();
        double mean = count[k] > 0 ? total / count[k] : std::nan("");
        double var =
            count[k] > 1
                ? std::max(0.0, (total_sq - total * total / count[k]) /
                                    (count[k] - 1))
                : std::nan("");
        b.AppendDouble(static_cast<double>(count[k]));
        b.AppendDouble(mean);
        b.AppendDouble(count[k] > 1 ? std::sqrt(var) : std::nan(""));
        b.AppendDouble(count[k] > 0 ? mn[k] : std::nan(""));
        b.AppendDouble(count[k] > 0 ? mx[k] : std::nan(""));
        LAFP_ASSIGN_OR_RETURN(df::ColumnPtr c, b.Finish());
        out_names.push_back(col_names[k]);
        out_cols.push_back(std::move(c));
      }
      LAFP_ASSIGN_OR_RETURN(
          df::DataFrame out,
          df::DataFrame::Make(std::move(out_names), std::move(out_cols)));
      return MemoizeSingle(node, std::move(out));
    }
    case OpKind::kDropDuplicates:
    case OpKind::kUnique: {
      // Streaming dedup with an accumulated distinct set. The accumulator
      // grows with the number of distinct keys (tracked memory).
      LAFP_ASSIGN_OR_RETURN(auto stream, Stream(node->inputs[0]));
      df::DataFrame acc;
      bool first = true;
      while (true) {
        LAFP_ASSIGN_OR_RETURN(auto part, stream->Next());
        if (!part.has_value()) break;
        PayOverhead();
        df::DataFrame deduped;
        if (desc.kind == OpKind::kUnique) {
          if (part->num_columns() != 1) {
            return Status::TypeError("unique expects a series");
          }
          LAFP_ASSIGN_OR_RETURN(df::ColumnPtr u,
                                df::Unique(*part->column(size_t{0})));
          LAFP_ASSIGN_OR_RETURN(
              deduped, df::DataFrame::Make({part->names()[0]}, {u}));
        } else {
          LAFP_ASSIGN_OR_RETURN(deduped,
                                df::DropDuplicates(*part, desc.columns));
        }
        if (first) {
          acc = std::move(deduped);
          first = false;
        } else {
          LAFP_ASSIGN_OR_RETURN(df::DataFrame merged,
                                df::Concat({acc, deduped}));
          if (desc.kind == OpKind::kUnique) {
            LAFP_ASSIGN_OR_RETURN(df::ColumnPtr u,
                                  df::Unique(*merged.column(size_t{0})));
            LAFP_ASSIGN_OR_RETURN(
                acc, df::DataFrame::Make({merged.names()[0]}, {u}));
          } else {
            LAFP_ASSIGN_OR_RETURN(acc,
                                  df::DropDuplicates(merged, desc.columns));
          }
        }
      }
      return MemoizeSingle(node, std::move(acc));
    }
    default: {
      if (IsMapOp(desc.kind)) return ZoneStream::Make(this, node);
      // Fallback inside the backend (sort and anything exotic): collect
      // inputs, run the eager kernel.
      std::vector<EagerValue> inputs;
      for (const auto& in : node->inputs) {
        if (in->produces_scalar) {
          LAFP_ASSIGN_OR_RETURN(df::Scalar s, EvalScalar(in));
          inputs.push_back(EagerValue::FromScalar(std::move(s)));
          continue;
        }
        LAFP_ASSIGN_OR_RETURN(df::DataFrame frame, CollectEager(in));
        inputs.push_back(EagerValue::Frame(std::move(frame)));
      }
      PayOverhead();
      LAFP_ASSIGN_OR_RETURN(EagerValue out,
                            ExecuteEagerOp(desc, inputs, tracker_));
      if (out.is_scalar) {
        return Status::ExecutionError("unexpected scalar from fallback op");
      }
      return MemoizeSingle(node, std::move(out.frame));
    }
  }
}

}  // namespace internal

namespace {

// Default spill directories must be unique per backend instance: spill
// file names are derived from a per-instance counter, so two backends
// (or two test processes) sharing one directory would overwrite each
// other's partitions mid-read.
std::string DefaultSpillDir(const char* base) {
  static std::atomic<uint64_t> instance{0};
  return (std::filesystem::temp_directory_path() /
          (std::string(base) + "_" + std::to_string(::getpid()) + "_" +
           std::to_string(instance.fetch_add(1, std::memory_order_relaxed))))
      .string();
}

}  // namespace

DaskBackend::DaskBackend(MemoryTracker* tracker, const BackendConfig& config)
    : Backend(tracker, config) {
  owns_spill_dir_ = config.spill_dir.empty();
  spill_dir_ =
      owns_spill_dir_ ? DefaultSpillDir("lafp_dask_spill") : config.spill_dir;
  owns_spill_fallback_dir_ = config.spill_fallback_dir.empty();
  spill_fallback_dir_ = owns_spill_fallback_dir_
                            ? DefaultSpillDir("lafp_dask_spill_alt")
                            : config.spill_fallback_dir;
}

DaskBackend::~DaskBackend() {
  std::error_code ec;  // best-effort cleanup; ignore races with other dtors
  if (owns_spill_dir_) std::filesystem::remove_all(spill_dir_, ec);
  if (owns_spill_fallback_dir_) {
    std::filesystem::remove_all(spill_fallback_dir_, ec);
  }
}

bool DaskBackend::SupportsOp(const OpDesc& desc) const {
  switch (desc.kind) {
    case OpKind::kPrint:
      return false;
    case OpKind::kSortValues:
      // No global row order in Dask (paper §5.2): programs must fall back
      // to Pandas around order-sensitive operations.
      return false;
    default:
      return true;
  }
}

Result<BackendValue> DaskBackend::Execute(
    const OpDesc& desc, const std::vector<BackendValue>& inputs) {
  trace::Span span("dask:execute", "backend");
  if (span.active()) span.AddArg("op", desc.ToString());
  auto node = std::make_shared<internal::DaskNode>();
  node->desc = desc;
  for (const auto& in : inputs) {
    if (in.is_scalar) {
      // Immediate scalar input: freeze it into the plan as a constant.
      auto constant = std::make_shared<internal::DaskNode>();
      constant->desc.kind = OpKind::kReduce;  // placeholder kind
      constant->produces_scalar = true;
      constant->persisted_scalar = std::make_shared<df::Scalar>(in.scalar);
      node->inputs.push_back(std::move(constant));
      continue;
    }
    LAFP_ASSIGN_OR_RETURN(internal::DaskNodePtr in_node,
                          internal::NodeOf(in));
    node->inputs.push_back(std::move(in_node));
  }
  node->produces_scalar =
      desc.kind == OpKind::kReduce || desc.kind == OpKind::kLen;
  return BackendValue::Frame(std::move(node));
}

Result<EagerValue> DaskBackend::Materialize(const BackendValue& value) {
  if (value.is_scalar) return EagerValue::FromScalar(value.scalar);
  LAFP_ASSIGN_OR_RETURN(internal::DaskNodePtr node,
                        internal::NodeOf(value));
  internal::DaskEvaluator evaluator(this);
  return evaluator.MaterializeNode(node);
}

Result<BackendValue> DaskBackend::FromEager(const EagerValue& value) {
  if (value.is_scalar) return BackendValue::FromScalar(value.scalar);
  auto node = std::make_shared<internal::DaskNode>();
  node->desc.kind = OpKind::kReadCsv;  // placeholder; never re-evaluated
  LAFP_ASSIGN_OR_RETURN(
      PartitionedFrame parts,
      PartitionedFrame::FromEager(value.frame, config_.partition_rows));
  node->persisted = std::make_shared<PartitionedFrame>(std::move(parts));
  return BackendValue::Frame(std::move(node));
}

Status DaskBackend::Persist(const BackendValue& value) {
  if (value.is_scalar) return Status::OK();
  LAFP_ASSIGN_OR_RETURN(internal::DaskNodePtr node,
                        internal::NodeOf(value));
  node->persist_requested = true;
  return Status::OK();
}

Status DaskBackend::Unpersist(const BackendValue& value) {
  if (value.is_scalar) return Status::OK();
  LAFP_ASSIGN_OR_RETURN(internal::DaskNodePtr node,
                        internal::NodeOf(value));
  node->persist_requested = false;
  node->persisted.reset();
  node->persisted_scalar.reset();
  return Status::OK();
}

}  // namespace lafp::exec
