#ifndef LAFP_EXEC_PARTITION_H_
#define LAFP_EXEC_PARTITION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataframe/dataframe.h"
#include "io/csv.h"

namespace lafp::exec {

/// A horizontal partition held either in memory or spilled to a CSV file
/// on disk. Spilled partitions release their memory reservation and are
/// reloaded (re-charging the tracker) on access.
class Partition {
 public:
  explicit Partition(df::DataFrame frame)
      : frame_(std::move(frame)), num_rows_(frame_.num_rows()) {}

  /// Spill to `<dir>/<name>.part.bin` (binary columnar format, see
  /// exec/spill.h), dropping the in-memory frame.
  Status SpillTo(const std::string& dir, const std::string& name);

  /// In-memory frame (loads from disk if spilled).
  Result<df::DataFrame> Load(MemoryTracker* tracker) const;

  bool spilled() const { return !spill_path_.empty(); }
  size_t num_rows() const { return num_rows_; }

 private:
  df::DataFrame frame_;  // empty when spilled
  std::string spill_path_;
  size_t num_rows_ = 0;
};

/// An ordered list of partitions — the in-memory representation used by
/// the Modin backend and the persisted/cached representation in the Dask
/// backend.
class PartitionedFrame {
 public:
  PartitionedFrame() = default;

  void Add(df::DataFrame partition) {
    partitions_.emplace_back(std::make_shared<Partition>(
        std::move(partition)));
  }

  size_t num_partitions() const { return partitions_.size(); }
  size_t num_rows() const;

  Result<df::DataFrame> partition(size_t i, MemoryTracker* tracker) const {
    return partitions_[i]->Load(tracker);
  }

  /// Spill every partition to `dir` (Dask disk-persist extension).
  Status SpillAll(const std::string& dir, const std::string& name_prefix);

  /// Spill one partition (used to bound memory while collecting).
  Status SpillPartition(size_t i, const std::string& dir,
                        const std::string& name) {
    return partitions_[i]->SpillTo(dir, name);
  }

  /// Concatenate into one eager frame (the materialization point; charges
  /// the tracker with the full footprint).
  Result<df::DataFrame> ToEager(MemoryTracker* tracker) const;

  /// Split an eager frame into row chunks of `partition_rows`. Fails
  /// (kOutOfMemory) if the chunk copies exceed the budget.
  static Result<PartitionedFrame> FromEager(const df::DataFrame& frame,
                                            size_t partition_rows);

 private:
  std::vector<std::shared_ptr<Partition>> partitions_;
};

}  // namespace lafp::exec

#endif  // LAFP_EXEC_PARTITION_H_
