#include "exec/backend.h"

#include "exec/dask_backend.h"
#include "exec/modin_backend.h"
#include "exec/pandas_backend.h"
#include "shard/shard_backend.h"

namespace lafp::exec {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPandas:
      return "pandas";
    case BackendKind::kModin:
      return "modin";
    case BackendKind::kDask:
      return "dask";
    case BackendKind::kShard:
      return "shard";
  }
  return "?";
}

std::unique_ptr<Backend> MakeBackend(BackendKind kind, MemoryTracker* tracker,
                                     const BackendConfig& config) {
  switch (kind) {
    case BackendKind::kPandas:
      return std::make_unique<PandasBackend>(tracker, config);
    case BackendKind::kModin:
      return std::make_unique<ModinBackend>(tracker, config);
    case BackendKind::kDask:
      return std::make_unique<DaskBackend>(tracker, config);
    case BackendKind::kShard:
      return std::make_unique<shard::ShardBackend>(tracker, config);
  }
  return nullptr;
}

}  // namespace lafp::exec
