#ifndef LAFP_EXEC_EAGER_OPS_H_
#define LAFP_EXEC_EAGER_OPS_H_

#include <string>
#include <vector>

#include "exec/op.h"

namespace lafp::exec {

/// A materialized value flowing through eager execution: either a frame
/// (a "series" is a one-column frame) or a scalar (a reduce result).
struct EagerValue {
  df::DataFrame frame;
  df::Scalar scalar;
  bool is_scalar = false;

  static EagerValue Frame(df::DataFrame f) {
    EagerValue v;
    v.frame = std::move(f);
    return v;
  }
  static EagerValue FromScalar(df::Scalar s) {
    EagerValue v;
    v.scalar = std::move(s);
    v.is_scalar = true;
    return v;
  }

  /// Series view: the single column of a one-column frame.
  Result<df::ColumnPtr> AsColumn() const;

  /// Repr used by print: scalars print their value; frames print like
  /// pandas (head rows + shape line).
  std::string ToDisplayString() const;
};

/// Execute one operator eagerly with the engine kernels. This is the
/// Pandas backend's execution path, the per-partition body of the Modin
/// and Dask backends, and the fallback for ops a backend cannot run
/// natively (paper §5.2).
Result<EagerValue> ExecuteEagerOp(const OpDesc& desc,
                                  const std::vector<EagerValue>& inputs,
                                  MemoryTracker* tracker);

}  // namespace lafp::exec

#endif  // LAFP_EXEC_EAGER_OPS_H_
