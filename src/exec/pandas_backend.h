#ifndef LAFP_EXEC_PANDAS_BACKEND_H_
#define LAFP_EXEC_PANDAS_BACKEND_H_

#include <vector>

#include "exec/backend.h"

namespace lafp::exec {

/// The plain eager engine: every op materializes immediately via the
/// dataframe kernels, everything lives in (tracked) memory. This is the
/// "Pandas" of the reproduction — fastest in-memory, first to OOM.
class PandasBackend : public Backend {
 public:
  PandasBackend(MemoryTracker* tracker, const BackendConfig& config)
      : Backend(tracker, config) {}

  const char* name() const override { return "pandas"; }
  bool preserves_row_order() const override { return true; }
  bool SupportsOp(const OpDesc& desc) const override;

  Result<BackendValue> Execute(
      const OpDesc& desc, const std::vector<BackendValue>& inputs) override;
  Result<EagerValue> Materialize(const BackendValue& value) override;
  Result<BackendValue> FromEager(const EagerValue& value) override;
};

}  // namespace lafp::exec

#endif  // LAFP_EXEC_PANDAS_BACKEND_H_
