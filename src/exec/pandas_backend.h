#ifndef LAFP_EXEC_PANDAS_BACKEND_H_
#define LAFP_EXEC_PANDAS_BACKEND_H_

#include <vector>

#include "exec/backend.h"

namespace lafp::exec {

/// The plain eager engine: every op materializes immediately via the
/// dataframe kernels, everything lives in (tracked) memory. This is the
/// "Pandas" of the reproduction — fastest in-memory, first to OOM.
///
/// Thread-safe for concurrent Execute/Materialize/FromEager: the backend
/// itself is stateless (kernels allocate fresh outputs; the shared
/// MemoryTracker is internally synchronized), which is what lets the DAG
/// scheduler run independent nodes in parallel.
class PandasBackend : public Backend {
 public:
  PandasBackend(MemoryTracker* tracker, const BackendConfig& config)
      : Backend(tracker, config) {}

  const char* name() const override { return "pandas"; }
  bool preserves_row_order() const override { return true; }
  bool SupportsOp(const OpDesc& desc) const override;

  Result<BackendValue> Execute(
      const OpDesc& desc, const std::vector<BackendValue>& inputs) override;
  Result<EagerValue> Materialize(const BackendValue& value) override;
  Result<BackendValue> FromEager(const EagerValue& value) override;
  int64_t RowCount(const BackendValue& value) const override;
};

}  // namespace lafp::exec

#endif  // LAFP_EXEC_PANDAS_BACKEND_H_
