#ifndef LAFP_EXEC_PANDAS_BACKEND_H_
#define LAFP_EXEC_PANDAS_BACKEND_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "dataframe/kernel_context.h"
#include "exec/backend.h"

namespace lafp::exec {

/// The plain eager engine: every op materializes immediately via the
/// dataframe kernels, everything lives in (tracked) memory. This is the
/// "Pandas" of the reproduction — fastest in-memory, first to OOM.
///
/// When config.intra_op_threads >= 1 the backend owns a kernel thread
/// pool and installs a df::KernelContext for the duration of each
/// Execute call, so the dataframe kernels split their loops into fixed
/// morsels (parallel when intra_op_threads > 1). The context lives in
/// thread-local storage and does not propagate into pool workers, which
/// is what prevents nested forking.
///
/// Thread-safe for concurrent Execute/Materialize/FromEager: the backend
/// holds no mutable per-call state (kernels allocate fresh outputs; the
/// shared MemoryTracker and the kernel pool's queue are internally
/// synchronized), which is what lets the DAG scheduler run independent
/// nodes in parallel. Concurrent Execute calls share the kernel pool;
/// each call blocks only its own scheduler worker while its morsels run.
class PandasBackend : public Backend {
 public:
  PandasBackend(MemoryTracker* tracker, const BackendConfig& config);

  const char* name() const override { return "pandas"; }
  bool preserves_row_order() const override { return true; }
  bool SupportsOp(const OpDesc& desc) const override;

  Result<BackendValue> Execute(
      const OpDesc& desc, const std::vector<BackendValue>& inputs) override;
  Result<EagerValue> Materialize(const BackendValue& value) override;
  Result<BackendValue> FromEager(const EagerValue& value) override;
  int64_t RowCount(const BackendValue& value) const override;

 private:
  /// Owned only when intra_op_threads > 1 and no shared pool was
  /// injected (BackendConfig::shared_pool).
  std::unique_ptr<ThreadPool> kernel_pool_;
  df::KernelContext kernel_ctx_;  // default (single-morsel) if knob is 0
};

}  // namespace lafp::exec

#endif  // LAFP_EXEC_PANDAS_BACKEND_H_
