#ifndef LAFP_EXEC_OP_H_
#define LAFP_EXEC_OP_H_

#include <map>
#include <string>
#include <vector>

#include "dataframe/ops.h"
#include "io/columnar.h"
#include "io/csv.h"

namespace lafp::exec {

/// The operator vocabulary of the LaFP task graph (paper §2.5). Each node
/// of the graph is one OpDesc plus edges to its inputs.
enum class OpKind : int {
  kReadCsv = 0,     // leaf; path + CsvReadOptions
  kSelect,          // df[["a","b"]]         (frame -> frame)
  kGetColumn,       // df["a"] / df.a        (frame -> series)
  kFilter,          // df[mask]              (frame, mask -> frame)
  kCompare,         // col <op> scalar|col   (series[,series] -> bool series)
  kBooleanAnd,      // mask & mask
  kBooleanOr,       // mask | mask
  kBooleanNot,      // ~mask
  kIsNull,          // col.isna()
  kStrContains,     // col.str.contains(s)
  kSetColumn,       // df["x"] = series|scalar (frame[,series] -> frame)
  kDropColumns,     // df.drop(columns=[...])
  kRename,          // df.rename(columns={...})
  kArith,           // series <op> scalar|series
  kAbs,             // series.abs()
  kRound,           // series.round(d)
  kFillNa,          // df/series.fillna(v)
  kDropNa,          // df.dropna()
  kAsType,          // series.astype(t)
  kToDatetime,      // to_datetime(series)
  kDtAccessor,      // series.dt.<field>
  kGroupByAgg,      // df.groupby(keys).agg(...)
  kReduce,          // series.sum()/mean()/... (series -> scalar)
  kMerge,           // merge(left, right, on=...)
  kSortValues,      // df.sort_values(by=...)
  kDropDuplicates,  // df.drop_duplicates(subset=...)
  kUnique,          // series.unique()
  kValueCounts,     // series.value_counts()
  kDescribe,        // df.describe()
  kHead,            // df.head(n)
  kPrint,           // lazy print (paper §3.3); side effect, returns none
  kLen,             // len(df) -> scalar (lazy integer)
  kIsIn,            // col.isin([...]) -> bool series
  kConcat,          // pd.concat([a, b, ...]) (variadic)
  kReadLfc,         // leaf; path + LfcReadOptions (native columnar scan)
  kMaterialized,    // leaf carrying a cached result (cache splice); the
                    // payload lives on the TaskNode, never in OpDesc
  kFusedMap,        // optimizer-fused elementwise chain (§fusion): either
                    // filter+project+steps (frame, mask -> series; `column`
                    // names the projected column) or a pure series chain
                    // (series -> series; `column` empty). The per-element
                    // steps live in `fused`, applied in order in one
                    // morsel pass with no intermediate materialization.
};

const char* OpKindName(OpKind kind);

/// Full description of one operator instance. A plain struct: only the
/// fields relevant to `kind` are meaningful (documented per field).
struct OpDesc {
  OpKind kind = OpKind::kReadCsv;

  std::string path;                 // kReadCsv / kReadLfc
  io::CsvReadOptions csv_options;   // kReadCsv (usecols/dtypes carry the
                                    // column-selection & metadata rewrites)
  io::LfcReadOptions lfc_options;   // kReadLfc (usecols/nrows mirror the
                                    // CSV knobs; prune holds zone-map
                                    // predicates attached by the optimizer)

  std::vector<std::string> columns;  // kSelect / kDropColumns /
                                     // kGroupByAgg keys / kMerge on /
                                     // kSortValues by / kDropDuplicates subset
  std::string column;                // kGetColumn / kSetColumn target

  df::CompareOp compare_op = df::CompareOp::kEq;  // kCompare
  df::ArithOp arith_op = df::ArithOp::kAdd;       // kArith
  bool scalar_on_left = false;                    // kArith: scalar <op> col
  bool has_scalar = false;     // kCompare/kArith/kSetColumn/kFillNa use
                               // `scalar` instead of a second input
  df::Scalar scalar;           // see has_scalar

  std::vector<df::AggSpec> aggs;       // kGroupByAgg
  df::AggFunc agg_func = df::AggFunc::kSum;  // kReduce
  std::vector<bool> ascending;         // kSortValues
  df::JoinType join_type = df::JoinType::kInner;  // kMerge
  df::DataType dtype = df::DataType::kString;     // kAsType
  df::DtField dt_field = df::DtField::kDayOfWeek; // kDtAccessor
  size_t n = 5;                        // kHead
  std::map<std::string, std::string> rename;  // kRename
  std::string str_arg;                 // kStrContains needle; kPrint prefix
  std::vector<df::Scalar> scalar_list;  // kIsIn membership values
  int digits = 0;                      // kRound

  /// kFusedMap: the fused elementwise steps, in application order. Each
  /// entry is a full OpDesc of an eligible step kind (kArith/kCompare with
  /// has_scalar, kAbs, kRound, kBooleanNot, kIsNull) whose single input is
  /// the running value of the chain.
  std::vector<OpDesc> fused;

  /// Human-readable summary for debug dumps / DOT output.
  std::string ToString() const;

  /// Structural fingerprint for common-subexpression detection (§3.5):
  /// two nodes with equal fingerprints and equal input nodes compute the
  /// same value.
  std::string Fingerprint() const;
};

/// Number of dataframe inputs `desc` consumes (print is variadic and
/// returns -1).
int ExpectedArity(const OpDesc& desc);

/// Classification used by the partitioned backends.
/// A map op applies independently per partition (row-wise).
bool IsMapOp(OpKind kind);
/// A reduction collapses all partitions into one small result.
bool IsReductionOp(OpKind kind);
/// Ops with side effects (print); never elided or reordered past each other.
bool HasSideEffect(OpKind kind);

/// Columns a filter predicate / op uses and modifies — the safe-point
/// machinery of predicate pushdown (§3.2). `used` is filled with the
/// columns `desc` reads from its primary input; `modified` with columns it
/// creates or overwrites. Returns false if the op's column usage cannot be
/// determined statically (pushdown must then treat it as a barrier).
bool GetColumnEffects(const OpDesc& desc, std::vector<std::string>* used,
                      std::vector<std::string>* modified);

/// True if filtering rows of the op's input cannot change the op's output
/// on the surviving rows (condition (2) of §3.2). False for aggregations,
/// joins, sorts, row-multiplying ops, etc.
bool IsRowwiseInvariant(OpKind kind);

}  // namespace lafp::exec

#endif  // LAFP_EXEC_OP_H_
