#include "exec/eager_ops.h"

#include <sstream>

#include "common/macros.h"
#include "exec/fused.h"

namespace lafp::exec {

using df::Column;
using df::ColumnPtr;
using df::DataFrame;

Result<ColumnPtr> EagerValue::AsColumn() const {
  if (is_scalar) return Status::TypeError("expected a series, got a scalar");
  if (frame.num_columns() != 1) {
    return Status::TypeError("expected a series (1 column), got " +
                             std::to_string(frame.num_columns()));
  }
  return frame.column(size_t{0});
}

std::string EagerValue::ToDisplayString() const {
  if (is_scalar) return scalar.ToString();
  return frame.ToString(10);
}

namespace {

Status CheckArity(const OpDesc& desc, const std::vector<EagerValue>& inputs) {
  int expected = ExpectedArity(desc);
  if (expected >= 0 && static_cast<int>(inputs.size()) != expected) {
    return Status::Invalid(std::string("op ") + OpKindName(desc.kind) +
                           " expects " + std::to_string(expected) +
                           " inputs, got " + std::to_string(inputs.size()));
  }
  return Status::OK();
}

/// Wrap a column as a series (one-column frame) named `name`.
Result<EagerValue> SeriesOf(ColumnPtr col, const std::string& name) {
  LAFP_ASSIGN_OR_RETURN(DataFrame frame,
                        DataFrame::Make({name}, {std::move(col)}));
  return EagerValue::Frame(std::move(frame));
}

std::string SeriesName(const EagerValue& v) {
  if (v.is_scalar || v.frame.num_columns() != 1) return "value";
  return v.frame.names()[0];
}

}  // namespace

Result<EagerValue> ExecuteEagerOp(const OpDesc& desc,
                                  const std::vector<EagerValue>& inputs,
                                  MemoryTracker* tracker) {
  LAFP_RETURN_NOT_OK(CheckArity(desc, inputs));
  switch (desc.kind) {
    case OpKind::kReadCsv: {
      LAFP_ASSIGN_OR_RETURN(
          DataFrame frame, io::ReadCsv(desc.path, desc.csv_options, tracker));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kReadLfc: {
      LAFP_ASSIGN_OR_RETURN(
          DataFrame frame,
          io::ReadLfcFile(desc.path, desc.lfc_options, tracker));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kSelect: {
      LAFP_ASSIGN_OR_RETURN(DataFrame frame,
                            inputs[0].frame.Select(desc.columns));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kGetColumn: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr col,
                            inputs[0].frame.column(desc.column));
      return SeriesOf(std::move(col), desc.column);
    }
    case OpKind::kFilter: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr mask, inputs[1].AsColumn());
      LAFP_ASSIGN_OR_RETURN(DataFrame frame,
                            df::Filter(inputs[0].frame, *mask));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kCompare: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr lhs, inputs[0].AsColumn());
      ColumnPtr out;
      if (desc.has_scalar) {
        LAFP_ASSIGN_OR_RETURN(out,
                              df::Compare(*lhs, desc.compare_op, desc.scalar));
      } else if (inputs[1].is_scalar) {
        // Runtime scalar (e.g. a lazily computed mean) as the rhs.
        LAFP_ASSIGN_OR_RETURN(
            out, df::Compare(*lhs, desc.compare_op, inputs[1].scalar));
      } else {
        LAFP_ASSIGN_OR_RETURN(ColumnPtr rhs, inputs[1].AsColumn());
        LAFP_ASSIGN_OR_RETURN(
            out, df::CompareColumns(*lhs, desc.compare_op, *rhs));
      }
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kBooleanAnd:
    case OpKind::kBooleanOr: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr a, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr b, inputs[1].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out,
                            desc.kind == OpKind::kBooleanAnd
                                ? df::BooleanAnd(*a, *b)
                                : df::BooleanOr(*a, *b));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kBooleanNot: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr a, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out, df::BooleanNot(*a));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kIsNull: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr a, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out, df::IsNull(*a));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kStrContains: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr a, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out, df::StrContains(*a, desc.str_arg));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kIsIn: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr a, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out, df::IsIn(*a, desc.scalar_list));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kConcat: {
      std::vector<DataFrame> frames;
      for (const auto& in : inputs) {
        if (in.is_scalar) {
          return Status::TypeError("concat expects dataframes");
        }
        frames.push_back(in.frame);
      }
      LAFP_ASSIGN_OR_RETURN(DataFrame out, df::Concat(frames));
      return EagerValue::Frame(std::move(out));
    }
    case OpKind::kSetColumn: {
      ColumnPtr value;
      if (desc.has_scalar) {
        LAFP_ASSIGN_OR_RETURN(
            value, Column::MakeConstant(desc.scalar,
                                        inputs[0].frame.num_rows(), tracker));
      } else if (inputs[1].is_scalar) {
        LAFP_ASSIGN_OR_RETURN(
            value, Column::MakeConstant(inputs[1].scalar,
                                        inputs[0].frame.num_rows(), tracker));
      } else {
        LAFP_ASSIGN_OR_RETURN(value, inputs[1].AsColumn());
      }
      LAFP_ASSIGN_OR_RETURN(
          DataFrame frame,
          inputs[0].frame.WithColumn(desc.column, std::move(value)));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kDropColumns: {
      LAFP_ASSIGN_OR_RETURN(DataFrame frame,
                            inputs[0].frame.Drop(desc.columns));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kRename: {
      LAFP_ASSIGN_OR_RETURN(DataFrame frame,
                            inputs[0].frame.Rename(desc.rename));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kArith: {
      if (inputs[0].is_scalar &&
          (desc.has_scalar || inputs.size() < 2 || inputs[1].is_scalar)) {
        return Status::TypeError("scalar-scalar arithmetic handled upstream");
      }
      if (desc.has_scalar) {
        LAFP_ASSIGN_OR_RETURN(ColumnPtr col, inputs[0].AsColumn());
        LAFP_ASSIGN_OR_RETURN(
            ColumnPtr out,
            desc.scalar_on_left
                ? df::ArithScalarLeft(desc.scalar, desc.arith_op, *col)
                : df::Arith(*col, desc.arith_op, desc.scalar));
        return SeriesOf(std::move(out), SeriesName(inputs[0]));
      }
      // Column-column, or a scalar that arrived as a runtime input.
      if (inputs[0].is_scalar) {
        LAFP_ASSIGN_OR_RETURN(ColumnPtr rhs, inputs[1].AsColumn());
        LAFP_ASSIGN_OR_RETURN(
            ColumnPtr out,
            df::ArithScalarLeft(inputs[0].scalar, desc.arith_op, *rhs));
        return SeriesOf(std::move(out), SeriesName(inputs[1]));
      }
      if (inputs[1].is_scalar) {
        LAFP_ASSIGN_OR_RETURN(ColumnPtr lhs, inputs[0].AsColumn());
        LAFP_ASSIGN_OR_RETURN(
            ColumnPtr out,
            desc.scalar_on_left
                ? df::ArithScalarLeft(inputs[1].scalar, desc.arith_op, *lhs)
                : df::Arith(*lhs, desc.arith_op, inputs[1].scalar));
        return SeriesOf(std::move(out), SeriesName(inputs[0]));
      }
      LAFP_ASSIGN_OR_RETURN(ColumnPtr lhs, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr rhs, inputs[1].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out,
                            df::ArithColumns(*lhs, desc.arith_op, *rhs));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kAbs: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr col, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out, df::Abs(*col));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kRound: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr col, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out, df::Round(*col, desc.digits));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kFillNa: {
      LAFP_ASSIGN_OR_RETURN(DataFrame frame,
                            df::FillNa(inputs[0].frame, desc.scalar));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kDropNa: {
      LAFP_ASSIGN_OR_RETURN(DataFrame frame, df::DropNa(inputs[0].frame));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kAsType: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr col, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out, df::AsType(*col, desc.dtype));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kToDatetime: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr col, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out, df::ToDatetime(*col));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kDtAccessor: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr col, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out,
                            df::DtAccessor(*col, desc.dt_field));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kGroupByAgg: {
      LAFP_ASSIGN_OR_RETURN(
          DataFrame frame,
          df::GroupByAgg(inputs[0].frame, desc.columns, desc.aggs));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kReduce: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr col, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(df::Scalar out, df::Reduce(*col, desc.agg_func));
      return EagerValue::FromScalar(std::move(out));
    }
    case OpKind::kMerge: {
      LAFP_ASSIGN_OR_RETURN(
          DataFrame frame, df::Merge(inputs[0].frame, inputs[1].frame,
                                     desc.columns, desc.join_type));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kSortValues: {
      LAFP_ASSIGN_OR_RETURN(
          DataFrame frame,
          df::SortValues(inputs[0].frame, desc.columns, desc.ascending));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kDropDuplicates: {
      LAFP_ASSIGN_OR_RETURN(
          DataFrame frame,
          df::DropDuplicates(inputs[0].frame, desc.columns));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kUnique: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr col, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(ColumnPtr out, df::Unique(*col));
      return SeriesOf(std::move(out), SeriesName(inputs[0]));
    }
    case OpKind::kValueCounts: {
      LAFP_ASSIGN_OR_RETURN(ColumnPtr col, inputs[0].AsColumn());
      LAFP_ASSIGN_OR_RETURN(
          DataFrame frame, df::ValueCounts(*col, SeriesName(inputs[0])));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kDescribe: {
      LAFP_ASSIGN_OR_RETURN(DataFrame frame, df::Describe(inputs[0].frame));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kHead: {
      LAFP_ASSIGN_OR_RETURN(DataFrame frame, df::Head(inputs[0].frame, desc.n));
      return EagerValue::Frame(std::move(frame));
    }
    case OpKind::kLen: {
      if (inputs[0].is_scalar) {
        return Status::TypeError("len() of a scalar");
      }
      return EagerValue::FromScalar(
          df::Scalar::Int(static_cast<int64_t>(inputs[0].frame.num_rows())));
    }
    case OpKind::kFusedMap:
      return ExecuteFusedMap(desc, inputs, tracker);
    case OpKind::kPrint:
      return Status::Invalid("print is executed by the session, not a kernel");
  }
  return Status::NotImplemented(std::string("op ") + OpKindName(desc.kind));
}

}  // namespace lafp::exec
