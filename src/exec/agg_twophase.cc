#include "exec/agg_twophase.h"

#include <cmath>

#include "common/macros.h"
#include "dataframe/kahan.h"
#include "dataframe/row_key.h"

namespace lafp::exec {

using df::AggFunc;
using df::AggSpec;
using df::Column;
using df::ColumnPtr;
using df::DataFrame;
using df::Scalar;

namespace {

std::string PartialName(size_t i, const char* tag) {
  return "__p" + std::to_string(i) + "_" + tag;
}

/// -1/0/+1 compare of two non-null scalars of compatible type.
int CompareScalars(const Scalar& a, const Scalar& b) {
  if (a.type() == df::DataType::kString ||
      a.type() == df::DataType::kCategory) {
    return a.string_value().compare(b.string_value());
  }
  double x = *a.AsDouble();
  double y = *b.AsDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

}  // namespace

GroupByCombiner::GroupByCombiner(std::vector<std::string> keys,
                                 std::vector<AggSpec> aggs)
    : keys_(std::move(keys)), aggs_(std::move(aggs)) {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    switch (a.func) {
      case AggFunc::kSum:
        partial_specs_.push_back({a.column, AggFunc::kSum,
                                  PartialName(i, "sum")});
        break;
      case AggFunc::kCount:
        partial_specs_.push_back({a.column, AggFunc::kCount,
                                  PartialName(i, "cnt")});
        break;
      case AggFunc::kMin:
        partial_specs_.push_back({a.column, AggFunc::kMin,
                                  PartialName(i, "min")});
        break;
      case AggFunc::kMax:
        partial_specs_.push_back({a.column, AggFunc::kMax,
                                  PartialName(i, "max")});
        break;
      case AggFunc::kMean:
        partial_specs_.push_back({a.column, AggFunc::kSum,
                                  PartialName(i, "sum")});
        partial_specs_.push_back({a.column, AggFunc::kCount,
                                  PartialName(i, "cnt")});
        break;
      case AggFunc::kNunique:
        supported_ = false;
        break;
    }
  }
}

Status GroupByCombiner::AddPartition(const DataFrame& partition) {
  if (!supported_) return Status::Invalid("nunique is not two-phase");
  LAFP_ASSIGN_OR_RETURN(DataFrame partial,
                        df::GroupByAgg(partition, keys_, partial_specs_));
  partials_.push_back(std::move(partial));
  return Status::OK();
}

Result<DataFrame> GroupByCombiner::PartialAggregate(
    const DataFrame& partition) const {
  if (!supported_) return Status::Invalid("nunique is not two-phase");
  return df::GroupByAgg(partition, keys_, partial_specs_);
}

Status GroupByCombiner::AddPartial(DataFrame partial) {
  if (!supported_) return Status::Invalid("nunique is not two-phase");
  partials_.push_back(std::move(partial));
  return Status::OK();
}

Result<DataFrame> GroupByCombiner::Finish() {
  if (!supported_) return Status::Invalid("nunique is not two-phase");
  if (partials_.empty()) {
    return Status::Invalid("no partitions were aggregated");
  }
  LAFP_ASSIGN_OR_RETURN(DataFrame all, df::Concat(partials_));
  partials_.clear();

  // Combine pass: re-aggregate partials by the same keys.
  std::vector<AggSpec> combine_specs;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    switch (a.func) {
      case AggFunc::kSum:
        combine_specs.push_back({PartialName(i, "sum"), AggFunc::kSum,
                                 a.out_name});
        break;
      case AggFunc::kCount:
        combine_specs.push_back({PartialName(i, "cnt"), AggFunc::kSum,
                                 a.out_name});
        break;
      case AggFunc::kMin:
        combine_specs.push_back({PartialName(i, "min"), AggFunc::kMin,
                                 a.out_name});
        break;
      case AggFunc::kMax:
        combine_specs.push_back({PartialName(i, "max"), AggFunc::kMax,
                                 a.out_name});
        break;
      case AggFunc::kMean:
        combine_specs.push_back({PartialName(i, "sum"), AggFunc::kSum,
                                 PartialName(i, "sum")});
        combine_specs.push_back({PartialName(i, "cnt"), AggFunc::kSum,
                                 PartialName(i, "cnt")});
        break;
      case AggFunc::kNunique:
        break;
    }
  }
  LAFP_ASSIGN_OR_RETURN(DataFrame combined,
                        df::GroupByAgg(all, keys_, combine_specs));
  // Resolve means and project to the requested output schema. Groups
  // whose inputs were all null have count 0; pandas (and the single-phase
  // kernel) yield a null mean there, whereas sum/count division would
  // produce a *valid* NaN — observably different to checksums and dropna.
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (aggs_[i].func != AggFunc::kMean) continue;
    LAFP_ASSIGN_OR_RETURN(ColumnPtr sum_col,
                          combined.column(PartialName(i, "sum")));
    LAFP_ASSIGN_OR_RETURN(ColumnPtr cnt_col,
                          combined.column(PartialName(i, "cnt")));
    const size_t n = combined.num_rows();
    std::vector<double> values(n);
    std::vector<uint8_t> validity(n, 1);
    bool any_empty = false;
    for (size_t r = 0; r < n; ++r) {
      int64_t cnt = cnt_col->IsValid(r) ? cnt_col->IntAt(r) : 0;
      if (cnt == 0) {
        values[r] = std::nan("");
        validity[r] = 0;
        any_empty = true;
        continue;
      }
      LAFP_ASSIGN_OR_RETURN(double sum, sum_col->NumericAt(r));
      values[r] = sum / static_cast<double>(cnt);
    }
    if (!any_empty) validity.clear();
    LAFP_ASSIGN_OR_RETURN(
        ColumnPtr mean_col,
        Column::MakeDouble(std::move(values), std::move(validity),
                           combined.tracker()));
    LAFP_ASSIGN_OR_RETURN(combined,
                          combined.WithColumn(aggs_[i].out_name, mean_col));
  }
  std::vector<std::string> out_names = keys_;
  for (const auto& a : aggs_) out_names.push_back(a.out_name);
  return combined.Select(out_names);
}

ReduceCombiner::ReduceCombiner(AggFunc func) : func_(func) {}

Status ReduceCombiner::AddPartition(const DataFrame& partition) {
  if (partition.num_columns() != 1) {
    return Status::TypeError("reduce expects a series partition");
  }
  const Column& col = *partition.column(size_t{0});
  if (seen_type_ == df::DataType::kNull) seen_type_ = col.type();
  if (func_ == AggFunc::kNunique) {
    for (size_t r = 0; r < col.size(); ++r) {
      if (!col.IsValid(r)) continue;
      std::string key;
      df::internal::AppendRowKey(col, r, &key);
      distinct_.insert(std::move(key));
    }
    return Status::OK();
  }
  // Fold using the engine's single-column reductions.
  if (func_ == AggFunc::kSum || func_ == AggFunc::kMean ||
      func_ == AggFunc::kCount) {
    if (func_ != AggFunc::kCount) {
      LAFP_ASSIGN_OR_RETURN(Scalar s, df::Reduce(col, AggFunc::kSum));
      if (s.type() == df::DataType::kInt64) {
        isum_ += s.int_value();
        sum_.Add(static_cast<double>(s.int_value()));
      } else {
        sum_.Add(s.double_value());
      }
    }
    LAFP_ASSIGN_OR_RETURN(Scalar c, df::Reduce(col, AggFunc::kCount));
    count_ += c.int_value();
    return Status::OK();
  }
  // min / max
  LAFP_ASSIGN_OR_RETURN(Scalar m, df::Reduce(col, func_));
  if (m.is_null()) return Status::OK();
  if (!has_value_) {
    min_ = max_ = m;
    has_value_ = true;
    return Status::OK();
  }
  if (func_ == AggFunc::kMin && CompareScalars(m, min_) < 0) min_ = m;
  if (func_ == AggFunc::kMax && CompareScalars(m, max_) > 0) max_ = m;
  return Status::OK();
}

Result<Scalar> ReduceCombiner::Finish() {
  switch (func_) {
    case AggFunc::kNunique:
      return Scalar::Int(static_cast<int64_t>(distinct_.size()));
    case AggFunc::kCount:
      return Scalar::Int(count_);
    case AggFunc::kSum:
      if (seen_type_ == df::DataType::kInt64 ||
          seen_type_ == df::DataType::kBool) {
        return Scalar::Int(isum_);
      }
      return Scalar::Double(sum_.Total());
    case AggFunc::kMean:
      if (count_ == 0) return Scalar::Null();
      return Scalar::Double(sum_.Total() / static_cast<double>(count_));
    case AggFunc::kMin:
      return has_value_ ? min_ : Scalar::Null();
    case AggFunc::kMax:
      return has_value_ ? max_ : Scalar::Null();
  }
  return Status::Invalid("bad reduce function");
}

}  // namespace lafp::exec
