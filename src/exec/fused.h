#ifndef LAFP_EXEC_FUSED_H_
#define LAFP_EXEC_FUSED_H_

#include "exec/eager_ops.h"

namespace lafp::exec {

/// Execute a kFusedMap node: the filter+project variant consumes
/// (frame, mask) and projects `desc.column` through the selection vector;
/// the pure series-chain variant consumes one series. Either way the
/// fused steps in `desc.fused` run in a single morsel pass over lane
/// buffers, so no per-step intermediate column is materialized. Output is
/// byte-identical to executing the unfused chain: chains whose static
/// dtype analysis hits an unsupported step fall back to composing the
/// ordinary kernels (which also reproduces their exact error behavior).
Result<EagerValue> ExecuteFusedMap(const OpDesc& desc,
                                   const std::vector<EagerValue>& inputs,
                                   MemoryTracker* tracker);

}  // namespace lafp::exec

#endif  // LAFP_EXEC_FUSED_H_
