#ifndef LAFP_EXEC_AGG_TWOPHASE_H_
#define LAFP_EXEC_AGG_TWOPHASE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "dataframe/kahan.h"
#include "dataframe/ops.h"

namespace lafp::exec {

/// Two-phase (partial + combine) group-by used by the partitioned
/// backends: each partition is partially aggregated, the small partials
/// are concatenated, and a combine pass merges them. mean decomposes into
/// sum+count; nunique is not decomposable (callers fall back).
class GroupByCombiner {
 public:
  GroupByCombiner(std::vector<std::string> keys,
                  std::vector<df::AggSpec> aggs);

  /// False if some aggregate (nunique) cannot run in two phases.
  bool supported() const { return supported_; }

  /// Partially aggregate one partition and retain the (small) partial.
  Status AddPartition(const df::DataFrame& partition);

  /// Phase one alone: partially aggregate a partition without retaining
  /// it. The shard workers run this remotely and ship the (small) partial
  /// back; the coordinator folds the results with AddPartial in global
  /// partition order so the combined output is byte-identical to the
  /// single-process two-phase path.
  Result<df::DataFrame> PartialAggregate(const df::DataFrame& partition) const;

  /// Fold a partial produced by PartialAggregate (possibly in another
  /// process). Order matters: partials must be added in global partition
  /// order for deterministic first-appearance group ordering.
  Status AddPartial(df::DataFrame partial);

  /// Combine all partials into the final result. The combiner is spent.
  Result<df::DataFrame> Finish();

  size_t num_partials() const { return partials_.size(); }

 private:
  std::vector<std::string> keys_;
  std::vector<df::AggSpec> aggs_;
  std::vector<df::AggSpec> partial_specs_;
  bool supported_ = true;
  std::vector<df::DataFrame> partials_;
};

/// Two-phase whole-column reduction (series.sum()/mean()/min()/...).
/// nunique folds per-partition distinct encodings and is supported.
class ReduceCombiner {
 public:
  explicit ReduceCombiner(df::AggFunc func);

  /// Fold one partition of the series (a one-column frame).
  Status AddPartition(const df::DataFrame& partition);

  Result<df::Scalar> Finish();

 private:
  df::AggFunc func_;
  df::KahanSum sum_;
  int64_t isum_ = 0;
  int64_t count_ = 0;
  bool has_value_ = false;
  df::Scalar min_, max_;
  std::unordered_set<std::string> distinct_;
  df::DataType seen_type_ = df::DataType::kNull;
};

}  // namespace lafp::exec

#endif  // LAFP_EXEC_AGG_TWOPHASE_H_
