#include "exec/spill.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/fault.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace lafp::exec {

namespace {

constexpr uint64_t kMagic = 0x4c414650'53504c31ULL;  // "LAFPSPL1"

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

/// Delete a partially written spill file. A truncated spill must never be
/// left behind: its header can look complete, so a later ReadSpillFile
/// would load garbage rows instead of failing.
Status FailWrite(std::ofstream* out, const std::string& path,
                 const Status& cause) {
  const int saved_errno = errno;
  out->close();
  std::error_code ec;
  std::filesystem::remove(path, ec);  // best effort; report the root cause
  if (!cause.ok()) return cause;
  std::string detail = "spill write failed: " + path;
  if (saved_errno != 0) {
    detail += " (";
    detail += std::strerror(saved_errno);
    detail += ")";
  }
  return Status::IOError(detail);
}

}  // namespace

Status WriteSpillFile(const df::DataFrame& frame, const std::string& path) {
  trace::Span span("spill:write", "io");
  if (span.active()) {
    span.AddArg("rows", static_cast<int64_t>(frame.num_rows()));
  }
  static auto* spill_writes =
      metrics::Registry::Global()->GetCounter("spill.writes");
  spill_writes->Increment();
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  WritePod(out, kMagic);
  WritePod(out, static_cast<uint32_t>(frame.num_columns()));
  WritePod(out, static_cast<uint64_t>(frame.num_rows()));
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    // ENOSPC/EIO injection site, checked once per column so a fault can
    // land mid-file — exactly the partial-write shape a full disk
    // produces.
    Status injected = FaultPoint("spill.write");
    if (!injected.ok()) return FailWrite(&out, path, injected);
    const std::string& name = frame.names()[c];
    const df::Column& col = *frame.column(c);
    WritePod(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    df::DataType type = col.type();
    // Categories spill as plain strings (the dictionary is rebuilt on
    // load only if requested again; simplicity over micro-optimality).
    if (type == df::DataType::kCategory) type = df::DataType::kString;
    WritePod(out, static_cast<uint8_t>(type));
    WritePod(out, static_cast<uint8_t>(col.has_nulls() ? 1 : 0));
    if (col.has_nulls()) {
      out.write(reinterpret_cast<const char*>(col.validity().data()),
                static_cast<std::streamsize>(col.validity().size()));
    }
    switch (col.type()) {
      case df::DataType::kInt64:
      case df::DataType::kTimestamp:
        out.write(reinterpret_cast<const char*>(col.ints().data()),
                  static_cast<std::streamsize>(col.size() * 8));
        break;
      case df::DataType::kDouble:
        out.write(reinterpret_cast<const char*>(col.doubles().data()),
                  static_cast<std::streamsize>(col.size() * 8));
        break;
      case df::DataType::kBool:
        out.write(reinterpret_cast<const char*>(col.bools().data()),
                  static_cast<std::streamsize>(col.size()));
        break;
      case df::DataType::kString:
      case df::DataType::kCategory:
        for (size_t r = 0; r < col.size(); ++r) {
          const std::string& s =
              col.IsValid(r) ? col.StringAt(r) : std::string();
          WritePod(out, static_cast<uint32_t>(s.size()));
          out.write(s.data(), static_cast<std::streamsize>(s.size()));
        }
        break;
      case df::DataType::kNull:
        return FailWrite(&out, path,
                         Status::Invalid("cannot spill a null-typed column"));
    }
    // Disk-full/EIO surfaces as a failed stream; stop before formatting
    // the remaining columns into a dead stream.
    if (!out.good()) return FailWrite(&out, path, Status::OK());
  }
  out.flush();
  if (!out.good()) return FailWrite(&out, path, Status::OK());
  return Status::OK();
}

Result<df::DataFrame> ReadSpillFile(const std::string& path,
                                    MemoryTracker* tracker) {
  trace::Span span("spill:read", "io");
  static auto* spill_reads =
      metrics::Registry::Global()->GetCounter("spill.reads");
  spill_reads->Increment();
  LAFP_RETURN_NOT_OK(FaultPoint("spill.read"));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  // Every length field read from disk is validated against the bytes that
  // are actually left in the file before any allocation sized by it — a
  // corrupt or truncated header must fail cleanly, not allocate
  // gigabytes.
  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IOError("cannot stat spill file " + path + ": " +
                           ec.message());
  }
  auto remaining = [&]() -> uint64_t {
    const auto pos = in.tellg();
    if (pos < 0) return 0;
    const uint64_t offset = static_cast<uint64_t>(pos);
    return offset >= file_size ? 0 : file_size - offset;
  };
  auto corrupt = [&](const std::string& what) {
    return Status::IOError("corrupt spill file " + path + ": " + what);
  };
  uint64_t magic = 0;
  uint32_t ncols = 0;
  uint64_t nrows = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::IOError("bad spill magic in " + path);
  }
  if (!ReadPod(in, &ncols) || !ReadPod(in, &nrows)) {
    return Status::IOError("truncated spill header in " + path);
  }
  // Each column needs at least name_len + type + validity flag = 6 bytes;
  // each row at least 1 payload byte per column.
  if (ncols > remaining() / 6) {
    return corrupt("column count " + std::to_string(ncols) +
                   " exceeds file size");
  }
  if (ncols > 0 && nrows > remaining()) {
    return corrupt("row count " + std::to_string(nrows) +
                   " exceeds file size");
  }
  std::vector<std::string> names;
  std::vector<df::ColumnPtr> cols;
  for (uint32_t c = 0; c < ncols; ++c) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len)) {
      return Status::IOError("truncated spill column in " + path);
    }
    if (name_len > remaining()) {
      return corrupt("column name length " + std::to_string(name_len) +
                     " exceeds file size");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint8_t type_raw = 0, has_validity = 0;
    if (!ReadPod(in, &type_raw) || !ReadPod(in, &has_validity)) {
      return Status::IOError("truncated spill column in " + path);
    }
    auto type = static_cast<df::DataType>(type_raw);
    std::vector<uint8_t> validity;
    if (has_validity != 0) {
      if (nrows > remaining()) return corrupt("validity exceeds file size");
      validity.resize(nrows);
      in.read(reinterpret_cast<char*>(validity.data()),
              static_cast<std::streamsize>(nrows));
    }
    df::ColumnPtr col;
    switch (type) {
      case df::DataType::kInt64:
      case df::DataType::kTimestamp: {
        if (nrows > remaining() / 8) {
          return corrupt("int payload exceeds file size");
        }
        std::vector<int64_t> values(nrows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(nrows * 8));
        LAFP_ASSIGN_OR_RETURN(
            col, type == df::DataType::kInt64
                     ? df::Column::MakeInt(std::move(values),
                                           std::move(validity), tracker)
                     : df::Column::MakeTimestamp(std::move(values),
                                                 std::move(validity),
                                                 tracker));
        break;
      }
      case df::DataType::kDouble: {
        if (nrows > remaining() / 8) {
          return corrupt("double payload exceeds file size");
        }
        std::vector<double> values(nrows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(nrows * 8));
        LAFP_ASSIGN_OR_RETURN(
            col, df::Column::MakeDouble(std::move(values),
                                        std::move(validity), tracker));
        break;
      }
      case df::DataType::kBool: {
        if (nrows > remaining()) {
          return corrupt("bool payload exceeds file size");
        }
        std::vector<uint8_t> values(nrows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(nrows));
        LAFP_ASSIGN_OR_RETURN(
            col, df::Column::MakeBool(std::move(values),
                                      std::move(validity), tracker));
        break;
      }
      case df::DataType::kString: {
        if (nrows > remaining() / 4) {
          return corrupt("string payload exceeds file size");
        }
        std::vector<std::string> values(nrows);
        for (uint64_t r = 0; r < nrows; ++r) {
          uint32_t len = 0;
          if (!ReadPod(in, &len)) {
            return Status::IOError("truncated spill string in " + path);
          }
          if (len > remaining()) {
            return corrupt("string length " + std::to_string(len) +
                           " exceeds file size");
          }
          values[r].resize(len);
          in.read(values[r].data(), len);
        }
        LAFP_ASSIGN_OR_RETURN(
            col, df::Column::MakeString(std::move(values),
                                        std::move(validity), tracker));
        break;
      }
      default:
        return Status::IOError("bad spill column type in " + path);
    }
    if (!in.good()) {
      return Status::IOError("truncated spill payload in " + path);
    }
    names.push_back(std::move(name));
    cols.push_back(std::move(col));
  }
  return df::DataFrame::Make(std::move(names), std::move(cols));
}

}  // namespace lafp::exec
