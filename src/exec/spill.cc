#include "exec/spill.h"

#include <cstring>
#include <fstream>

#include "common/macros.h"

namespace lafp::exec {

namespace {

constexpr uint64_t kMagic = 0x4c414650'53504c31ULL;  // "LAFPSPL1"

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status WriteSpillFile(const df::DataFrame& frame, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  WritePod(out, kMagic);
  WritePod(out, static_cast<uint32_t>(frame.num_columns()));
  WritePod(out, static_cast<uint64_t>(frame.num_rows()));
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    const std::string& name = frame.names()[c];
    const df::Column& col = *frame.column(c);
    WritePod(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    df::DataType type = col.type();
    // Categories spill as plain strings (the dictionary is rebuilt on
    // load only if requested again; simplicity over micro-optimality).
    if (type == df::DataType::kCategory) type = df::DataType::kString;
    WritePod(out, static_cast<uint8_t>(type));
    WritePod(out, static_cast<uint8_t>(col.has_nulls() ? 1 : 0));
    if (col.has_nulls()) {
      out.write(reinterpret_cast<const char*>(col.validity().data()),
                static_cast<std::streamsize>(col.validity().size()));
    }
    switch (col.type()) {
      case df::DataType::kInt64:
      case df::DataType::kTimestamp:
        out.write(reinterpret_cast<const char*>(col.ints().data()),
                  static_cast<std::streamsize>(col.size() * 8));
        break;
      case df::DataType::kDouble:
        out.write(reinterpret_cast<const char*>(col.doubles().data()),
                  static_cast<std::streamsize>(col.size() * 8));
        break;
      case df::DataType::kBool:
        out.write(reinterpret_cast<const char*>(col.bools().data()),
                  static_cast<std::streamsize>(col.size()));
        break;
      case df::DataType::kString:
      case df::DataType::kCategory:
        for (size_t r = 0; r < col.size(); ++r) {
          const std::string& s =
              col.IsValid(r) ? col.StringAt(r) : std::string();
          WritePod(out, static_cast<uint32_t>(s.size()));
          out.write(s.data(), static_cast<std::streamsize>(s.size()));
        }
        break;
      case df::DataType::kNull:
        return Status::Invalid("cannot spill a null-typed column");
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("spill write failed: " + path);
  return Status::OK();
}

Result<df::DataFrame> ReadSpillFile(const std::string& path,
                                    MemoryTracker* tracker) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  uint64_t magic = 0;
  uint32_t ncols = 0;
  uint64_t nrows = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::IOError("bad spill magic in " + path);
  }
  if (!ReadPod(in, &ncols) || !ReadPod(in, &nrows)) {
    return Status::IOError("truncated spill header in " + path);
  }
  std::vector<std::string> names;
  std::vector<df::ColumnPtr> cols;
  for (uint32_t c = 0; c < ncols; ++c) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len)) {
      return Status::IOError("truncated spill column in " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint8_t type_raw = 0, has_validity = 0;
    if (!ReadPod(in, &type_raw) || !ReadPod(in, &has_validity)) {
      return Status::IOError("truncated spill column in " + path);
    }
    auto type = static_cast<df::DataType>(type_raw);
    std::vector<uint8_t> validity;
    if (has_validity != 0) {
      validity.resize(nrows);
      in.read(reinterpret_cast<char*>(validity.data()),
              static_cast<std::streamsize>(nrows));
    }
    df::ColumnPtr col;
    switch (type) {
      case df::DataType::kInt64:
      case df::DataType::kTimestamp: {
        std::vector<int64_t> values(nrows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(nrows * 8));
        LAFP_ASSIGN_OR_RETURN(
            col, type == df::DataType::kInt64
                     ? df::Column::MakeInt(std::move(values),
                                           std::move(validity), tracker)
                     : df::Column::MakeTimestamp(std::move(values),
                                                 std::move(validity),
                                                 tracker));
        break;
      }
      case df::DataType::kDouble: {
        std::vector<double> values(nrows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(nrows * 8));
        LAFP_ASSIGN_OR_RETURN(
            col, df::Column::MakeDouble(std::move(values),
                                        std::move(validity), tracker));
        break;
      }
      case df::DataType::kBool: {
        std::vector<uint8_t> values(nrows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(nrows));
        LAFP_ASSIGN_OR_RETURN(
            col, df::Column::MakeBool(std::move(values),
                                      std::move(validity), tracker));
        break;
      }
      case df::DataType::kString: {
        std::vector<std::string> values(nrows);
        for (uint64_t r = 0; r < nrows; ++r) {
          uint32_t len = 0;
          if (!ReadPod(in, &len)) {
            return Status::IOError("truncated spill string in " + path);
          }
          values[r].resize(len);
          in.read(values[r].data(), len);
        }
        LAFP_ASSIGN_OR_RETURN(
            col, df::Column::MakeString(std::move(values),
                                        std::move(validity), tracker));
        break;
      }
      default:
        return Status::IOError("bad spill column type in " + path);
    }
    if (!in.good()) {
      return Status::IOError("truncated spill payload in " + path);
    }
    names.push_back(std::move(name));
    cols.push_back(std::move(col));
  }
  return df::DataFrame::Make(std::move(names), std::move(cols));
}

}  // namespace lafp::exec
