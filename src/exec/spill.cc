#include "exec/spill.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fault.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace lafp::exec {

namespace {

constexpr uint64_t kMagic = 0x4c414650'53504c31ULL;  // "LAFPSPL1"

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Byte-budgeted istream reader: tracks how much of `limit` has been
/// consumed so every length field can be validated against the bytes
/// actually available, whether the source is a file or a message payload
/// (where tellg()/file_size tricks don't apply).
class BoundedReader {
 public:
  BoundedReader(std::istream& in, uint64_t limit) : in_(in), limit_(limit) {}

  uint64_t remaining() const {
    return consumed_ >= limit_ ? 0 : limit_ - consumed_;
  }

  template <typename T>
  bool ReadPod(T* value) {
    return Read(reinterpret_cast<char*>(value), sizeof(T));
  }

  bool Read(char* dst, uint64_t n) {
    if (n > remaining()) {
      consumed_ = limit_;
      return false;
    }
    if (n == 0) return in_.good();
    in_.read(dst, static_cast<std::streamsize>(n));
    consumed_ += n;
    return in_.good();
  }

 private:
  std::istream& in_;
  uint64_t limit_;
  uint64_t consumed_ = 0;
};

/// Shared encoder. `file_faults` arms the per-column spill.write
/// injection site (ENOSPC/EIO checked once per column so a fault can land
/// mid-file — exactly the partial-write shape a full disk produces); the
/// shard exchange path leaves it off and injects at its own shard.send /
/// shard.recv boundaries instead.
Status WriteSpillBody(const df::DataFrame& frame, std::ostream& out,
                      bool file_faults) {
  WritePod(out, kMagic);
  WritePod(out, static_cast<uint32_t>(frame.num_columns()));
  WritePod(out, static_cast<uint64_t>(frame.num_rows()));
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    if (file_faults) LAFP_RETURN_NOT_OK(FaultPoint("spill.write"));
    const std::string& name = frame.names()[c];
    const df::Column& col = *frame.column(c);
    WritePod(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    df::DataType type = col.type();
    // Categories spill as plain strings (the dictionary is rebuilt on
    // load only if requested again; simplicity over micro-optimality).
    if (type == df::DataType::kCategory) type = df::DataType::kString;
    WritePod(out, static_cast<uint8_t>(type));
    WritePod(out, static_cast<uint8_t>(col.has_nulls() ? 1 : 0));
    if (col.has_nulls()) {
      out.write(reinterpret_cast<const char*>(col.validity().data()),
                static_cast<std::streamsize>(col.validity().size()));
    }
    switch (col.type()) {
      case df::DataType::kInt64:
      case df::DataType::kTimestamp:
        out.write(reinterpret_cast<const char*>(col.ints().data()),
                  static_cast<std::streamsize>(col.size() * 8));
        break;
      case df::DataType::kDouble:
        out.write(reinterpret_cast<const char*>(col.doubles().data()),
                  static_cast<std::streamsize>(col.size() * 8));
        break;
      case df::DataType::kBool:
        out.write(reinterpret_cast<const char*>(col.bools().data()),
                  static_cast<std::streamsize>(col.size()));
        break;
      case df::DataType::kString:
      case df::DataType::kCategory:
        for (size_t r = 0; r < col.size(); ++r) {
          const std::string& s =
              col.IsValid(r) ? col.StringAt(r) : std::string();
          WritePod(out, static_cast<uint32_t>(s.size()));
          out.write(s.data(), static_cast<std::streamsize>(s.size()));
        }
        break;
      case df::DataType::kNull:
        return Status::Invalid("cannot spill a null-typed column");
    }
    // Disk-full/EIO surfaces as a failed stream; stop before formatting
    // the remaining columns into a dead stream.
    if (!out.good()) return Status::IOError("spill write failed");
  }
  out.flush();
  if (!out.good()) return Status::IOError("spill write failed");
  return Status::OK();
}

/// Delete a partially written spill file. A truncated spill must never be
/// left behind: its header can look complete, so a later ReadSpillFile
/// would load garbage rows instead of failing.
Status FailWrite(std::ofstream* out, const std::string& path,
                 const Status& cause) {
  const int saved_errno = errno;
  out->close();
  std::error_code ec;
  std::filesystem::remove(path, ec);  // best effort; report the root cause
  // A generic stream failure gets the path and errno attached; injected
  // faults and kNull rejections keep their own (site-naming) message.
  if (!cause.IsIOError() || cause.message() != "spill write failed") {
    return cause;
  }
  std::string detail = "spill write failed: " + path;
  if (saved_errno != 0) {
    detail += " (";
    detail += std::strerror(saved_errno);
    detail += ")";
  }
  return Status::IOError(detail);
}

}  // namespace

Status WriteSpillStream(const df::DataFrame& frame, std::ostream& out) {
  return WriteSpillBody(frame, out, /*file_faults=*/false);
}

Status WriteSpillFile(const df::DataFrame& frame, const std::string& path) {
  trace::Span span("spill:write", "io");
  if (span.active()) {
    span.AddArg("rows", static_cast<int64_t>(frame.num_rows()));
  }
  static auto* spill_writes =
      metrics::Registry::Global()->GetCounter("spill.writes");
  spill_writes->Increment();
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  Status st = WriteSpillBody(frame, out, /*file_faults=*/true);
  if (!st.ok()) return FailWrite(&out, path, st);
  return Status::OK();
}

Result<df::DataFrame> ReadSpillStream(std::istream& in, uint64_t limit,
                                      MemoryTracker* tracker,
                                      const std::string& context,
                                      bool expect_exact) {
  // Every length field is validated against the bytes that are actually
  // left inside `limit` before any allocation sized by it — a corrupt or
  // truncated header must fail cleanly, not allocate gigabytes.
  BoundedReader reader(in, limit);
  auto corrupt = [&](const std::string& what) {
    return Status::IOError("corrupt spill data (" + context + "): " + what);
  };
  auto truncated = [&](const std::string& what) {
    return Status::IOError("truncated spill data (" + context + "): " + what);
  };
  uint64_t magic = 0;
  uint32_t ncols = 0;
  uint64_t nrows = 0;
  if (!reader.ReadPod(&magic) || magic != kMagic) {
    return Status::IOError("bad spill magic (" + context + ")");
  }
  if (!reader.ReadPod(&ncols) || !reader.ReadPod(&nrows)) {
    return truncated("header");
  }
  // Each column needs at least name_len + type + validity flag = 6 bytes;
  // each row at least 1 payload byte per column. nrows == 0 with a
  // non-empty column table is legitimate (empty partitions travel the
  // shard exchange routinely); nrows > 0 with no columns is
  // unrepresentable, so such a header is lying.
  if (ncols > reader.remaining() / 6) {
    return corrupt("column count " + std::to_string(ncols) +
                   " exceeds available bytes");
  }
  if (ncols == 0 && nrows > 0) {
    return corrupt("row count " + std::to_string(nrows) +
                   " with no columns");
  }
  if (ncols > 0 && nrows > reader.remaining()) {
    return corrupt("row count " + std::to_string(nrows) +
                   " exceeds available bytes");
  }
  std::vector<std::string> names;
  std::vector<df::ColumnPtr> cols;
  for (uint32_t c = 0; c < ncols; ++c) {
    uint32_t name_len = 0;
    if (!reader.ReadPod(&name_len)) return truncated("column header");
    if (name_len > reader.remaining()) {
      return corrupt("column name length " + std::to_string(name_len) +
                     " exceeds available bytes");
    }
    std::string name(name_len, '\0');
    if (!reader.Read(name.data(), name_len)) return truncated("column name");
    uint8_t type_raw = 0, has_validity = 0;
    if (!reader.ReadPod(&type_raw) || !reader.ReadPod(&has_validity)) {
      return truncated("column header");
    }
    auto type = static_cast<df::DataType>(type_raw);
    std::vector<uint8_t> validity;
    if (has_validity != 0) {
      if (nrows > reader.remaining()) {
        return corrupt("validity exceeds available bytes");
      }
      validity.resize(nrows);
      if (!reader.Read(reinterpret_cast<char*>(validity.data()), nrows)) {
        return truncated("validity");
      }
    }
    df::ColumnPtr col;
    switch (type) {
      case df::DataType::kInt64:
      case df::DataType::kTimestamp: {
        if (nrows > reader.remaining() / 8) {
          return corrupt("int payload exceeds available bytes");
        }
        std::vector<int64_t> values(nrows);
        if (!reader.Read(reinterpret_cast<char*>(values.data()),
                         nrows * 8)) {
          return truncated("int payload");
        }
        LAFP_ASSIGN_OR_RETURN(
            col, type == df::DataType::kInt64
                     ? df::Column::MakeInt(std::move(values),
                                           std::move(validity), tracker)
                     : df::Column::MakeTimestamp(std::move(values),
                                                 std::move(validity),
                                                 tracker));
        break;
      }
      case df::DataType::kDouble: {
        if (nrows > reader.remaining() / 8) {
          return corrupt("double payload exceeds available bytes");
        }
        std::vector<double> values(nrows);
        if (!reader.Read(reinterpret_cast<char*>(values.data()),
                         nrows * 8)) {
          return truncated("double payload");
        }
        LAFP_ASSIGN_OR_RETURN(
            col, df::Column::MakeDouble(std::move(values),
                                        std::move(validity), tracker));
        break;
      }
      case df::DataType::kBool: {
        if (nrows > reader.remaining()) {
          return corrupt("bool payload exceeds available bytes");
        }
        std::vector<uint8_t> values(nrows);
        if (!reader.Read(reinterpret_cast<char*>(values.data()), nrows)) {
          return truncated("bool payload");
        }
        LAFP_ASSIGN_OR_RETURN(
            col, df::Column::MakeBool(std::move(values),
                                      std::move(validity), tracker));
        break;
      }
      case df::DataType::kString: {
        if (nrows > reader.remaining() / 4) {
          return corrupt("string payload exceeds available bytes");
        }
        std::vector<std::string> values(nrows);
        for (uint64_t r = 0; r < nrows; ++r) {
          uint32_t len = 0;
          if (!reader.ReadPod(&len)) return truncated("string length");
          if (len > reader.remaining()) {
            return corrupt("string length " + std::to_string(len) +
                           " exceeds available bytes");
          }
          values[r].resize(len);
          if (!reader.Read(values[r].data(), len)) {
            return truncated("string payload");
          }
        }
        LAFP_ASSIGN_OR_RETURN(
            col, df::Column::MakeString(std::move(values),
                                        std::move(validity), tracker));
        break;
      }
      default:
        return corrupt("bad column type " + std::to_string(type_raw));
    }
    names.push_back(std::move(name));
    cols.push_back(std::move(col));
  }
  if (expect_exact && reader.remaining() != 0) {
    // Message-framed payloads must be consumed exactly: leftover bytes
    // mean the sender and receiver disagree about the frame's extent.
    return corrupt(std::to_string(reader.remaining()) +
                   " trailing bytes after frame");
  }
  return df::DataFrame::Make(std::move(names), std::move(cols));
}

Result<df::DataFrame> ReadSpillFile(const std::string& path,
                                    MemoryTracker* tracker) {
  trace::Span span("spill:read", "io");
  static auto* spill_reads =
      metrics::Registry::Global()->GetCounter("spill.reads");
  spill_reads->Increment();
  LAFP_RETURN_NOT_OK(FaultPoint("spill.read"));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open spill file " + path);
  }
  std::error_code ec;
  const uint64_t file_size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IOError("cannot stat spill file " + path + ": " +
                           ec.message());
  }
  return ReadSpillStream(in, file_size, tracker, "spill file " + path);
}

Result<std::string> SerializeFrame(const df::DataFrame& frame) {
  std::ostringstream out(std::ios::binary);
  LAFP_RETURN_NOT_OK(WriteSpillStream(frame, out));
  return std::move(out).str();
}

Result<df::DataFrame> DeserializeFrame(std::string_view bytes,
                                       MemoryTracker* tracker) {
  std::istringstream in(std::string(bytes), std::ios::binary);
  return ReadSpillStream(in, bytes.size(), tracker, "shard exchange",
                         /*expect_exact=*/true);
}

}  // namespace lafp::exec
