#include "exec/op.h"

#include <sstream>

namespace lafp::exec {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kReadCsv:
      return "read_csv";
    case OpKind::kSelect:
      return "select";
    case OpKind::kGetColumn:
      return "get_item";
    case OpKind::kFilter:
      return "filter";
    case OpKind::kCompare:
      return "compare";
    case OpKind::kBooleanAnd:
      return "and";
    case OpKind::kBooleanOr:
      return "or";
    case OpKind::kBooleanNot:
      return "not";
    case OpKind::kIsNull:
      return "isna";
    case OpKind::kStrContains:
      return "str_contains";
    case OpKind::kSetColumn:
      return "set_item";
    case OpKind::kDropColumns:
      return "drop";
    case OpKind::kRename:
      return "rename";
    case OpKind::kArith:
      return "arith";
    case OpKind::kAbs:
      return "abs";
    case OpKind::kRound:
      return "round";
    case OpKind::kFillNa:
      return "fillna";
    case OpKind::kDropNa:
      return "dropna";
    case OpKind::kAsType:
      return "astype";
    case OpKind::kToDatetime:
      return "to_datetime";
    case OpKind::kDtAccessor:
      return "dt";
    case OpKind::kGroupByAgg:
      return "groupby_agg";
    case OpKind::kReduce:
      return "reduce";
    case OpKind::kMerge:
      return "merge";
    case OpKind::kSortValues:
      return "sort_values";
    case OpKind::kDropDuplicates:
      return "drop_duplicates";
    case OpKind::kUnique:
      return "unique";
    case OpKind::kValueCounts:
      return "value_counts";
    case OpKind::kDescribe:
      return "describe";
    case OpKind::kHead:
      return "head";
    case OpKind::kPrint:
      return "print";
    case OpKind::kLen:
      return "len";
    case OpKind::kIsIn:
      return "isin";
    case OpKind::kConcat:
      return "concat";
    case OpKind::kReadLfc:
      return "read_lfc";
    case OpKind::kMaterialized:
      return "materialized";
    case OpKind::kFusedMap:
      return "fused_map";
  }
  return "?";
}

std::string OpDesc::ToString() const {
  std::ostringstream os;
  os << OpKindName(kind);
  switch (kind) {
    case OpKind::kReadCsv:
      os << "(" << path;
      if (!csv_options.usecols.empty()) {
        os << ", usecols=[";
        for (size_t i = 0; i < csv_options.usecols.size(); ++i) {
          if (i > 0) os << ",";
          os << csv_options.usecols[i];
        }
        os << "]";
      }
      if (!csv_options.dtypes.empty()) os << ", dtypes=" << csv_options.dtypes.size();
      os << ")";
      break;
    case OpKind::kReadLfc:
      os << "(" << path;
      if (!lfc_options.usecols.empty()) {
        os << ", usecols=[";
        for (size_t i = 0; i < lfc_options.usecols.size(); ++i) {
          if (i > 0) os << ",";
          os << lfc_options.usecols[i];
        }
        os << "]";
      }
      if (!lfc_options.prune.empty()) {
        os << ", prune=[";
        for (size_t i = 0; i < lfc_options.prune.size(); ++i) {
          if (i > 0) os << " & ";
          const auto& p = lfc_options.prune[i];
          os << p.column << df::CompareOpSymbol(p.op) << p.scalar.ToString();
        }
        os << "]";
      }
      os << ")";
      break;
    case OpKind::kGetColumn:
    case OpKind::kSetColumn:
      os << "[" << column << "]";
      break;
    case OpKind::kCompare:
      os << "(" << df::CompareOpSymbol(compare_op);
      if (has_scalar) os << " " << scalar.ToString();
      os << ")";
      break;
    case OpKind::kArith:
      os << "(" << df::ArithOpSymbol(arith_op);
      if (has_scalar) os << " " << scalar.ToString();
      os << ")";
      break;
    case OpKind::kReduce:
      os << "(" << df::AggFuncName(agg_func) << ")";
      break;
    case OpKind::kGroupByAgg: {
      os << "(keys=[";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) os << ",";
        os << columns[i];
      }
      os << "], aggs=[";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) os << ",";
        os << df::AggFuncName(aggs[i].func) << "(" << aggs[i].column << ")";
      }
      os << "])";
      break;
    }
    case OpKind::kSelect:
    case OpKind::kDropColumns:
    case OpKind::kSortValues:
    case OpKind::kMerge: {
      os << "([";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) os << ",";
        os << columns[i];
      }
      os << "])";
      break;
    }
    case OpKind::kHead:
      os << "(" << n << ")";
      break;
    case OpKind::kDtAccessor:
      os << "." << df::DtFieldName(dt_field);
      break;
    case OpKind::kAsType:
      os << "(" << df::DataTypeName(dtype) << ")";
      break;
    case OpKind::kFusedMap: {
      os << "(";
      if (!column.empty()) os << "filter[" << column << "]";
      for (size_t i = 0; i < fused.size(); ++i) {
        if (i > 0 || !column.empty()) os << " -> ";
        os << fused[i].ToString();
      }
      os << ")";
      break;
    }
    default:
      break;
  }
  return os.str();
}

std::string OpDesc::Fingerprint() const {
  std::ostringstream os;
  os << static_cast<int>(kind) << "|" << path << "|";
  for (const auto& c : csv_options.usecols) os << c << ",";
  os << "|";
  for (const auto& [k, v] : csv_options.dtypes) {
    os << k << ":" << static_cast<int>(v) << ",";
  }
  os << "|" << csv_options.nrows;
  os << "|";
  for (const auto& c : columns) os << c << ",";
  os << "|" << column << "|" << static_cast<int>(compare_op) << "|"
     << static_cast<int>(arith_op) << "|" << scalar_on_left << "|"
     << has_scalar << "|" << scalar.ToString() << "|"
     << static_cast<int>(scalar.type()) << "|";
  for (const auto& a : aggs) {
    os << a.column << ":" << static_cast<int>(a.func) << ":" << a.out_name
       << ",";
  }
  os << "|" << static_cast<int>(agg_func) << "|";
  for (bool b : ascending) os << (b ? 1 : 0);
  os << "|" << static_cast<int>(join_type) << "|"
     << static_cast<int>(dtype) << "|" << static_cast<int>(dt_field) << "|"
     << n << "|";
  for (const auto& [k, v] : rename) os << k << ">" << v << ",";
  os << "|" << str_arg << "|" << digits << "|";
  for (const auto& s : scalar_list) {
    os << static_cast<int>(s.type()) << ":" << s.ToString() << ",";
  }
  os << "|";
  for (const auto& c : lfc_options.usecols) os << c << ",";
  os << "|" << lfc_options.nrows << "|" << lfc_options.prune_enabled << "|";
  for (const auto& p : lfc_options.prune) {
    // Pruned and unpruned scans are distinct nodes: their outputs differ.
    os << p.column << ":" << static_cast<int>(p.op) << ":"
       << static_cast<int>(p.scalar.type()) << ":" << p.scalar.ToString()
       << ",";
  }
  os << "|";
  // kFusedMap steps, recursively: two fused nodes are equal only if every
  // step matches (dedup correctness depends on this).
  for (const auto& f : fused) os << "{" << f.Fingerprint() << "}";
  return os.str();
}

int ExpectedArity(const OpDesc& desc) {
  switch (desc.kind) {
    case OpKind::kReadCsv:
    case OpKind::kReadLfc:
    case OpKind::kMaterialized:
      return 0;
    case OpKind::kFilter:
    case OpKind::kBooleanAnd:
    case OpKind::kBooleanOr:
    case OpKind::kMerge:
      return 2;
    case OpKind::kFusedMap:
      // Filter+project variant consumes (frame, mask); the pure series
      // chain consumes just the series.
      return desc.column.empty() ? 1 : 2;
    case OpKind::kCompare:
    case OpKind::kArith:
    case OpKind::kSetColumn:
      return desc.has_scalar ? 1 : 2;
    case OpKind::kPrint:
    case OpKind::kConcat:
      return -1;  // variadic
    default:
      return 1;
  }
}

bool IsMapOp(OpKind kind) {
  switch (kind) {
    case OpKind::kSelect:
    case OpKind::kGetColumn:
    case OpKind::kFilter:
    case OpKind::kCompare:
    case OpKind::kBooleanAnd:
    case OpKind::kBooleanOr:
    case OpKind::kBooleanNot:
    case OpKind::kIsNull:
    case OpKind::kStrContains:
    case OpKind::kSetColumn:
    case OpKind::kDropColumns:
    case OpKind::kRename:
    case OpKind::kArith:
    case OpKind::kAbs:
    case OpKind::kRound:
    case OpKind::kFillNa:
    case OpKind::kDropNa:
    case OpKind::kAsType:
    case OpKind::kToDatetime:
    case OpKind::kDtAccessor:
    case OpKind::kIsIn:
    case OpKind::kFusedMap:  // row-wise by construction: filter + per-row steps
      return true;
    default:
      return false;
  }
}

bool IsReductionOp(OpKind kind) {
  switch (kind) {
    case OpKind::kGroupByAgg:
    case OpKind::kReduce:
    case OpKind::kValueCounts:
    case OpKind::kDescribe:
    case OpKind::kLen:
      return true;
    default:
      return false;
  }
}

bool HasSideEffect(OpKind kind) { return kind == OpKind::kPrint; }

bool GetColumnEffects(const OpDesc& desc, std::vector<std::string>* used,
                      std::vector<std::string>* modified) {
  used->clear();
  modified->clear();
  switch (desc.kind) {
    case OpKind::kSelect:
      *used = desc.columns;
      return true;
    case OpKind::kGetColumn:
      *used = {desc.column};
      return true;
    case OpKind::kSetColumn:
      *modified = {desc.column};
      return true;
    case OpKind::kDropColumns:
      return true;  // drops columns; reads nothing per-row
    case OpKind::kRename:
      for (const auto& [from, to] : desc.rename) {
        used->push_back(from);
        modified->push_back(to);
      }
      return true;
    case OpKind::kCompare:
    case OpKind::kArith:
    case OpKind::kAbs:
    case OpKind::kRound:
    case OpKind::kAsType:
    case OpKind::kToDatetime:
    case OpKind::kDtAccessor:
    case OpKind::kIsNull:
    case OpKind::kStrContains:
    case OpKind::kBooleanAnd:
    case OpKind::kBooleanOr:
    case OpKind::kBooleanNot:
    case OpKind::kIsIn:
      // Series-level transforms: operate on whichever single column flows
      // in; they do not touch other columns of a frame.
      return true;
    case OpKind::kSortValues:
    case OpKind::kDropDuplicates:
      // Read their key columns, modify nothing.
      *used = desc.columns;
      return true;
    case OpKind::kFillNa:
    case OpKind::kDropNa:
      // Reads every column (to find nulls); modifies in place.
      return false;
    default:
      return false;  // unknown effects: pushdown barrier
  }
}

bool IsRowwiseInvariant(OpKind kind) {
  switch (kind) {
    case OpKind::kSelect:
    case OpKind::kGetColumn:
    case OpKind::kSetColumn:
    case OpKind::kDropColumns:
    case OpKind::kRename:
    case OpKind::kCompare:
    case OpKind::kArith:
    case OpKind::kAbs:
    case OpKind::kRound:
    case OpKind::kFillNa:
    case OpKind::kAsType:
    case OpKind::kToDatetime:
    case OpKind::kDtAccessor:
    case OpKind::kIsNull:
    case OpKind::kStrContains:
    case OpKind::kBooleanAnd:
    case OpKind::kBooleanOr:
    case OpKind::kBooleanNot:
    case OpKind::kIsIn:
    case OpKind::kSortValues:       // value of surviving rows unchanged
    case OpKind::kDropDuplicates:   // filtering first removes the same rows
    case OpKind::kFilter:
      return true;
    default:
      return false;
  }
}

}  // namespace lafp::exec
