#include "exec/fused.h"

#include <cmath>
#include <cstring>

#include "common/macros.h"
#include "dataframe/arith_semantics.h"
#include "dataframe/kernel_context.h"

namespace lafp::exec {

namespace {

using df::Column;
using df::ColumnPtr;
using df::DataFrame;
using df::DataType;

/// One resolved per-element transform of the fused pass. The OpDesc steps
/// are lowered to these at plan time so the morsel loop carries no type
/// dispatch, no Scalar unboxing, and no validity branching beyond what the
/// semantics require.
struct MicroOp {
  enum Kind {
    kIntArith,    // int64 lane: v = ApplyArithInt(op, v, ir)
    kDblArithR,   // widen -> double lane: v = ApplyArith(op, v, d); null->NaN
    kDblArithL,   // widen -> double lane: v = ApplyArith(op, d, v); null->NaN
    kNullArith,   // arith with a null scalar: all-NaN, validity all-0
    kCmpDbl,      // widen -> bool lane: ApplyCmp(v, d); NaN/null -> 0
    kCmpNull,     // compare with null scalar: kNe -> validity, else all-0
    kAbsInt,      // int64 lane: WrapAbs, all rows
    kAbsDbl,      // double lane: fabs, all rows
    kRoundDbl,    // double lane: round(v*scale)/scale, all rows
    kIdentity,    // round on int64: no-op copy
    kNotBool,     // bool lane: (valid && v) ? 0 : 1; clears validity
    kIsNull,      // any lane -> bool: !valid || (double && isnan)
  };
  Kind kind = kIdentity;
  df::ArithOp aop = df::ArithOp::kAdd;
  df::CompareOp cop = df::CompareOp::kEq;
  double d = 0.0;      // kDblArith*/kCmpDbl operand, kRoundDbl scale
  int64_t ir = 0;      // kIntArith operand
  bool ne = false;     // kCmpNull: true for !=
};

/// Value-type/validity state the chain is in before or after a micro-op —
/// a pure function of the step descriptors and the input column's
/// metadata, never of row data.
struct LaneState {
  DataType dtype = DataType::kInt64;  // kInt64 / kTimestamp / kDouble / kBool
  bool has_vvec = false;  // would the unfused column carry a validity vector?
};

/// Lower the step list to micro-ops. Returns false when some step cannot
/// run on lanes (string data, non-numeric scalars, type errors mid-chain):
/// the caller then composes the ordinary kernels instead, which reproduces
/// the unfused behavior — including its error — exactly.
bool PlanChain(const std::vector<OpDesc>& steps, LaneState state,
               std::vector<MicroOp>* plan, LaneState* final_state) {
  plan->clear();
  if (state.dtype != DataType::kInt64 && state.dtype != DataType::kDouble &&
      state.dtype != DataType::kBool && state.dtype != DataType::kTimestamp) {
    return false;
  }
  for (const OpDesc& s : steps) {
    MicroOp m;
    switch (s.kind) {
      case OpKind::kArith: {
        if (!s.has_scalar) return false;
        if (s.scalar.is_null()) {
          m.kind = MicroOp::kNullArith;
          state = {DataType::kDouble, true};
          break;
        }
        auto rd = s.scalar.AsDouble();
        if (!rd.ok()) return false;  // non-numeric scalar: TypeError path
        m.aop = s.arith_op;
        if (s.scalar_on_left) {
          // ArithScalarLeft always takes the double path.
          m.kind = MicroOp::kDblArithL;
          m.d = *rd;
          state.dtype = DataType::kDouble;
        } else if (state.dtype == DataType::kInt64 &&
                   s.scalar.type() == DataType::kInt64 &&
                   s.arith_op != df::ArithOp::kDiv) {
          m.kind = MicroOp::kIntArith;
          m.ir = s.scalar.int_value();
          // int fast path: dtype and validity pass through unchanged.
        } else {
          m.kind = MicroOp::kDblArithR;
          m.d = *rd;
          state.dtype = DataType::kDouble;
        }
        break;
      }
      case OpKind::kCompare: {
        if (!s.has_scalar) return false;
        if (s.scalar.is_null()) {
          m.kind = MicroOp::kCmpNull;
          m.ne = s.compare_op == df::CompareOp::kNe;
        } else {
          // The ts-vs-string parse path and string needles are not
          // lane-representable; the fusion pass never emits them, and the
          // fallback handles them if one slips through.
          auto rd = s.scalar.AsDouble();
          if (!rd.ok()) return false;
          if (state.dtype == DataType::kTimestamp &&
              s.scalar.type() == DataType::kString) {
            return false;
          }
          m.kind = MicroOp::kCmpDbl;
          m.cop = s.compare_op;
          m.d = *rd;
        }
        state = {DataType::kBool, false};
        break;
      }
      case OpKind::kAbs:
        if (state.dtype == DataType::kInt64) {
          m.kind = MicroOp::kAbsInt;
        } else if (state.dtype == DataType::kDouble) {
          m.kind = MicroOp::kAbsDbl;
        } else {
          return false;  // abs on bool/timestamp: TypeError
        }
        break;
      case OpKind::kRound:
        if (state.dtype == DataType::kInt64) {
          m.kind = MicroOp::kIdentity;
        } else if (state.dtype == DataType::kDouble) {
          m.kind = MicroOp::kRoundDbl;
          m.d = std::pow(10.0, s.digits);
        } else {
          return false;  // round on bool/timestamp: TypeError
        }
        break;
      case OpKind::kBooleanNot:
        if (state.dtype != DataType::kBool) return false;
        m.kind = MicroOp::kNotBool;
        state.has_vvec = false;
        break;
      case OpKind::kIsNull:
        m.kind = MicroOp::kIsNull;
        state = {DataType::kBool, false};
        break;
      default:
        return false;
    }
    plan->push_back(m);
  }
  *final_state = state;
  return true;
}

/// Morsel-local lane buffers. Only the lane matching the current dtype is
/// live; transitions (widening, compares) move values across lanes.
struct Lanes {
  std::vector<int64_t> i;
  std::vector<double> d;
  std::vector<uint8_t> b;
  std::vector<uint8_t> v;  // validity bytes; live iff state.has_vvec
};

/// Widen the live lane into the double lane for rows [0, m). Matches
/// Column::NumericAt on stored values (validity handled by the caller).
void WidenLanes(Lanes* L, DataType from, size_t m) {
  if (from == DataType::kDouble) return;
  L->d.resize(m);
  if (from == DataType::kBool) {
    for (size_t k = 0; k < m; ++k) L->d[k] = L->b[k] != 0 ? 1.0 : 0.0;
  } else {
    for (size_t k = 0; k < m; ++k) L->d[k] = static_cast<double>(L->i[k]);
  }
}

/// Apply one micro-op to the lanes over rows [0, m), updating `state`.
/// Each body is a tight branch-free loop (the same shapes as the
/// vectorized kernels), so fusing does not cost vectorization.
void ApplyMicroOp(const MicroOp& m, Lanes* L, LaneState* state, size_t m_rows) {
  const size_t n = m_rows;
  const uint8_t* valid = state->has_vvec ? L->v.data() : nullptr;
  switch (m.kind) {
    case MicroOp::kIntArith:
      for (size_t k = 0; k < n; ++k) {
        L->i[k] = df::ApplyArithInt(m.aop, L->i[k], m.ir);
      }
      break;
    case MicroOp::kDblArithR: {
      WidenLanes(L, state->dtype, n);
      double* d = L->d.data();
      switch (m.aop) {
        case df::ArithOp::kAdd:
          for (size_t k = 0; k < n; ++k) d[k] = d[k] + m.d;
          break;
        case df::ArithOp::kSub:
          for (size_t k = 0; k < n; ++k) d[k] = d[k] - m.d;
          break;
        case df::ArithOp::kMul:
          for (size_t k = 0; k < n; ++k) d[k] = d[k] * m.d;
          break;
        case df::ArithOp::kDiv:
          for (size_t k = 0; k < n; ++k) d[k] = d[k] / m.d;
          break;
        case df::ArithOp::kMod:
          for (size_t k = 0; k < n; ++k) d[k] = df::FlooredModDouble(d[k], m.d);
          break;
      }
      if (valid != nullptr) {
        const double nan = std::nan("");
        for (size_t k = 0; k < n; ++k) d[k] = valid[k] != 0 ? d[k] : nan;
      }
      state->dtype = DataType::kDouble;
      break;
    }
    case MicroOp::kDblArithL: {
      WidenLanes(L, state->dtype, n);
      double* d = L->d.data();
      for (size_t k = 0; k < n; ++k) d[k] = df::ApplyArith(m.aop, m.d, d[k]);
      if (valid != nullptr) {
        const double nan = std::nan("");
        for (size_t k = 0; k < n; ++k) d[k] = valid[k] != 0 ? d[k] : nan;
      }
      state->dtype = DataType::kDouble;
      break;
    }
    case MicroOp::kNullArith:
      L->d.assign(n, std::nan(""));
      L->v.assign(n, 0);
      *state = {DataType::kDouble, true};
      break;
    case MicroOp::kCmpDbl: {
      WidenLanes(L, state->dtype, n);
      L->b.resize(n);
      const double* d = L->d.data();
      uint8_t* b = L->b.data();
      switch (m.cop) {
        case df::CompareOp::kEq:
          for (size_t k = 0; k < n; ++k) b[k] = d[k] == m.d ? 1 : 0;
          break;
        case df::CompareOp::kNe:
          // NaN rows compare false even for != (pandas skips NaN).
          for (size_t k = 0; k < n; ++k) {
            b[k] = (d[k] != m.d) & (d[k] == d[k]) ? 1 : 0;
          }
          break;
        case df::CompareOp::kLt:
          for (size_t k = 0; k < n; ++k) b[k] = d[k] < m.d ? 1 : 0;
          break;
        case df::CompareOp::kLe:
          for (size_t k = 0; k < n; ++k) b[k] = d[k] <= m.d ? 1 : 0;
          break;
        case df::CompareOp::kGt:
          for (size_t k = 0; k < n; ++k) b[k] = d[k] > m.d ? 1 : 0;
          break;
        case df::CompareOp::kGe:
          for (size_t k = 0; k < n; ++k) b[k] = d[k] >= m.d ? 1 : 0;
          break;
      }
      if (valid != nullptr) {
        for (size_t k = 0; k < n; ++k) b[k] = valid[k] != 0 ? b[k] : 0;
      }
      *state = {DataType::kBool, false};
      break;
    }
    case MicroOp::kCmpNull: {
      L->b.assign(n, 0);
      if (m.ne) {
        if (valid == nullptr) {
          std::memset(L->b.data(), 1, n);
        } else {
          for (size_t k = 0; k < n; ++k) L->b[k] = valid[k] != 0 ? 1 : 0;
        }
      }
      *state = {DataType::kBool, false};
      break;
    }
    case MicroOp::kAbsInt:
      for (size_t k = 0; k < n; ++k) L->i[k] = df::WrapAbs(L->i[k]);
      break;
    case MicroOp::kAbsDbl:
      for (size_t k = 0; k < n; ++k) L->d[k] = std::fabs(L->d[k]);
      break;
    case MicroOp::kRoundDbl:
      // Rounds stored values at every row (the unfused kernel ignores
      // validity here too).
      for (size_t k = 0; k < n; ++k) {
        L->d[k] = std::round(L->d[k] * m.d) / m.d;
      }
      break;
    case MicroOp::kIdentity:
      break;
    case MicroOp::kNotBool:
      if (valid == nullptr) {
        for (size_t k = 0; k < n; ++k) L->b[k] = L->b[k] != 0 ? 0 : 1;
      } else {
        for (size_t k = 0; k < n; ++k) {
          L->b[k] = (valid[k] != 0) & (L->b[k] != 0) ? 0 : 1;
        }
      }
      state->has_vvec = false;
      break;
    case MicroOp::kIsNull: {
      L->b.resize(n);
      if (state->dtype == DataType::kDouble) {
        const double* d = L->d.data();
        for (size_t k = 0; k < n; ++k) {
          L->b[k] =
              ((valid != nullptr && valid[k] == 0) | (d[k] != d[k])) ? 1 : 0;
        }
      } else if (valid == nullptr) {
        std::memset(L->b.data(), 0, n);
      } else {
        for (size_t k = 0; k < n; ++k) L->b[k] = valid[k] != 0 ? 0 : 1;
      }
      *state = {DataType::kBool, false};
      break;
    }
  }
}

/// Apply one step with the ordinary kernels — the fallback when PlanChain
/// refuses a chain. Composing the kernels is byte-identical to the unfused
/// plan by construction (same calls in the same order).
Result<ColumnPtr> ApplyStepUnfused(const OpDesc& s, const Column& col) {
  switch (s.kind) {
    case OpKind::kArith:
      if (!s.has_scalar) break;
      return s.scalar_on_left
                 ? df::ArithScalarLeft(s.scalar, s.arith_op, col)
                 : df::Arith(col, s.arith_op, s.scalar);
    case OpKind::kCompare:
      if (!s.has_scalar) break;
      return df::Compare(col, s.compare_op, s.scalar);
    case OpKind::kAbs:
      return df::Abs(col);
    case OpKind::kRound:
      return df::Round(col, s.digits);
    case OpKind::kBooleanNot:
      return df::BooleanNot(col);
    case OpKind::kIsNull:
      return df::IsNull(col);
    default:
      break;
  }
  return Status::Invalid("non-fusable step in fused_map: " + s.ToString());
}

/// Run the fused chain over `src` (already filtered when a mask variant):
/// one morsel pass, lanes in, final column out.
Result<ColumnPtr> RunFusedChain(const Column& src,
                                const std::vector<MicroOp>& plan,
                                const LaneState& init,
                                const LaneState& fin,
                                MemoryTracker* tracker) {
  const size_t n = src.size();
  // Full-length output storage for the final lane.
  std::vector<int64_t> out_i;
  std::vector<double> out_d;
  std::vector<uint8_t> out_b;
  std::vector<uint8_t> out_v;
  switch (fin.dtype) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      out_i.resize(n);
      break;
    case DataType::kDouble:
      out_d.resize(n);
      break;
    case DataType::kBool:
      out_b.resize(n);
      break;
    default:
      return Status::Invalid("bad fused output type");
  }
  if (fin.has_vvec) out_v.resize(n);

  LAFP_RETURN_NOT_OK(df::RunMorsels(n, [&](size_t begin, size_t end) {
    const size_t m = end - begin;
    Lanes L;
    LaneState state = init;
    // Load the live lane from the source spans.
    switch (src.type()) {
      case DataType::kInt64:
      case DataType::kTimestamp:
        L.i.assign(src.int_data() + begin, src.int_data() + end);
        break;
      case DataType::kDouble:
        L.d.assign(src.double_data() + begin, src.double_data() + end);
        break;
      case DataType::kBool:
        L.b.assign(src.bool_data() + begin, src.bool_data() + end);
        break;
      default:
        return Status::Invalid("bad fused input type");
    }
    if (init.has_vvec) {
      const uint8_t* v = src.validity_data();
      L.v.assign(v + begin, v + end);
    }
    for (const MicroOp& mo : plan) ApplyMicroOp(mo, &L, &state, m);
    // Store the final lane into the output range.
    switch (fin.dtype) {
      case DataType::kInt64:
      case DataType::kTimestamp:
        std::memcpy(out_i.data() + begin, L.i.data(), m * sizeof(int64_t));
        break;
      case DataType::kDouble:
        std::memcpy(out_d.data() + begin, L.d.data(), m * sizeof(double));
        break;
      default:
        std::memcpy(out_b.data() + begin, L.b.data(), m);
        break;
    }
    if (fin.has_vvec) {
      if (state.has_vvec) {
        std::memcpy(out_v.data() + begin, L.v.data(), m);
      } else {
        std::memset(out_v.data() + begin, 1, m);
      }
    }
    return Status::OK();
  }));
  switch (fin.dtype) {
    case DataType::kInt64:
      return Column::MakeInt(std::move(out_i), std::move(out_v), tracker);
    case DataType::kTimestamp:
      return Column::MakeTimestamp(std::move(out_i), std::move(out_v),
                                   tracker);
    case DataType::kDouble:
      return Column::MakeDouble(std::move(out_d), std::move(out_v), tracker);
    default:
      return Column::MakeBool(std::move(out_b), std::move(out_v), tracker);
  }
}

/// Wrap a column as a one-column frame named `name`.
Result<EagerValue> SeriesOf(ColumnPtr col, const std::string& name) {
  LAFP_ASSIGN_OR_RETURN(DataFrame frame,
                        DataFrame::Make({name}, {std::move(col)}));
  return EagerValue::Frame(std::move(frame));
}

}  // namespace

Result<EagerValue> ExecuteFusedMap(const OpDesc& desc,
                                   const std::vector<EagerValue>& inputs,
                                   MemoryTracker* tracker) {
  ColumnPtr cur;
  std::string out_name;
  if (!desc.column.empty()) {
    // Filter+project variant: gather only the projected column through the
    // selection vector. Byte-identical to Filter(df)[column] because
    // TakeRows applies the same Take to every column.
    if (inputs[0].is_scalar) {
      return Status::TypeError("fused_map expects a frame input");
    }
    LAFP_ASSIGN_OR_RETURN(ColumnPtr mask, inputs[1].AsColumn());
    if (mask->type() != DataType::kBool) {
      return Status::TypeError("filter mask must be bool");
    }
    if (mask->size() != inputs[0].frame.num_rows()) {
      return Status::Invalid("filter mask length mismatch");
    }
    LAFP_ASSIGN_OR_RETURN(ColumnPtr src, inputs[0].frame.column(desc.column));
    LAFP_ASSIGN_OR_RETURN(std::vector<int64_t> indices,
                          df::MaskToIndices(*mask));
    LAFP_ASSIGN_OR_RETURN(cur, src->Take(indices));
    out_name = desc.column;
  } else {
    LAFP_ASSIGN_OR_RETURN(cur, inputs[0].AsColumn());
    out_name = inputs[0].frame.names()[0];
  }
  if (!desc.fused.empty()) {
    std::vector<MicroOp> plan;
    LaneState init{cur->type(), cur->has_nulls()};
    LaneState fin;
    if (PlanChain(desc.fused, init, &plan, &fin)) {
      LAFP_ASSIGN_OR_RETURN(cur,
                            RunFusedChain(*cur, plan, init, fin, tracker));
    } else {
      // Unsupported lane shape (strings, type errors): compose the
      // ordinary kernels step by step.
      for (const OpDesc& s : desc.fused) {
        LAFP_ASSIGN_OR_RETURN(cur, ApplyStepUnfused(s, *cur));
      }
    }
  }
  return SeriesOf(std::move(cur), out_name);
}

}  // namespace lafp::exec
