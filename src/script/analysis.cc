#include "script/analysis.h"

#include <algorithm>

#include "common/string_util.h"

namespace lafp::script {

std::vector<std::string> LivenessResult::LiveColumnsAfter(
    size_t stmt, const std::string& var, bool* all) const {
  *all = out[stmt].count(AllAttrsFact(var)) > 0;
  std::vector<std::string> cols;
  std::string prefix = var + ".";
  for (const auto& fact : out[stmt]) {
    if (StartsWith(fact, prefix) && fact != AllAttrsFact(var)) {
      cols.push_back(fact.substr(prefix.size()));
    }
  }
  return cols;
}

namespace {

/// Facts attached to one variable (plain + attrs), removed at its
/// definition and translated to source-variable facts per op semantics.
struct VarFacts {
  bool plain = false;
  bool all_attrs = false;
  std::vector<std::string> columns;

  bool any() const { return plain || all_attrs || !columns.empty(); }
};

VarFacts TakeFacts(FactSet* facts, const std::string& var) {
  VarFacts out;
  std::string prefix = var + ".";
  for (auto it = facts->begin(); it != facts->end();) {
    if (*it == var) {
      out.plain = true;
      it = facts->erase(it);
    } else if (*it == AllAttrsFact(var)) {
      out.all_attrs = true;
      it = facts->erase(it);
    } else if (StartsWith(*it, prefix)) {
      out.columns.push_back(it->substr(prefix.size()));
      it = facts->erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void GenPlain(FactSet* facts, const IRValue& v) {
  if (v.is_var()) facts->insert(PlainFact(v.var));
}

/// Copy x's attribute facts onto y (frame -> frame passthrough ops).
void PassThroughAttrs(FactSet* facts, const VarFacts& x,
                      const std::string& y) {
  if (x.all_attrs) facts->insert(AllAttrsFact(y));
  for (const auto& c : x.columns) facts->insert(AttrFact(y, c));
}

/// Liveness transfer for one statement (backward): given the live facts
/// after the statement, produce the live facts before it. Implements the
/// paper's Gen/Kill rules extended with derived-frame translation (§3.1
/// rule 3).
class Transfer {
 public:
  explicit Transfer(const ProgramModel& model) : model_(model) {}

  void Apply(const IRStmt& stmt, FactSet* facts) const {
    switch (stmt.kind) {
      case IRStmtKind::kAssign: {
        VarFacts target_facts = TakeFacts(facts, stmt.target);
        GenExpr(stmt.expr, target_facts, facts);
        return;
      }
      case IRStmtKind::kExprStmt: {
        VarFacts none;
        none.plain = true;  // calls run for effect: arguments are used
        GenExpr(stmt.expr, none, facts);
        return;
      }
      case IRStmtKind::kStoreItem: {
        // df["c"] = v : kills df.c, uses df and v.
        if (stmt.object.is_var() && stmt.key.is_str()) {
          facts->erase(AttrFact(stmt.object.var, stmt.key.str_value));
        }
        GenPlain(facts, stmt.object);
        GenPlain(facts, stmt.value);
        return;
      }
      case IRStmtKind::kBranch:
        GenPlain(facts, stmt.cond);
        return;
      default:
        return;
    }
  }

 private:
  void GenOperands(const IRExpr& expr, FactSet* facts) const {
    for (const auto& v : expr.operands) GenPlain(facts, v);
    for (const auto& [_, v] : expr.kwargs) GenPlain(facts, v);
    for (const auto& [k, v] : expr.dict_items) {
      GenPlain(facts, k);
      GenPlain(facts, v);
    }
  }

  /// Gen rules for `x = expr` where `x_facts` are the (already removed)
  /// facts that were live for x.
  void GenExpr(const IRExpr& expr, const VarFacts& x_facts,
               FactSet* facts) const {
    const bool live = x_facts.any();
    switch (expr.kind) {
      case IRExprKind::kAtom: {
        if (!expr.atom.is_var()) return;
        if (!live) return;
        const std::string& y = expr.atom.var;
        facts->insert(PlainFact(y));
        PassThroughAttrs(facts, x_facts, y);  // alias
        return;
      }
      case IRExprKind::kList:
      case IRExprKind::kDict:
      case IRExprKind::kBinOp:
      case IRExprKind::kCompare:
      case IRExprKind::kUnaryOp:
      case IRExprKind::kFString:
        if (live) GenOperands(expr, facts);
        return;
      case IRExprKind::kGetAttr: {
        if (!live || !expr.object.is_var()) return;
        const std::string& y = expr.object.var;
        facts->insert(PlainFact(y));
        if (model_.KindOf(y) == VarKind::kDataFrame) {
          facts->insert(AttrFact(y, expr.attr));  // df.col access
        }
        return;
      }
      case IRExprKind::kGetItem: {
        if (!live || !expr.object.is_var()) return;
        const std::string& y = expr.object.var;
        const IRValue& index = expr.operands[0];
        facts->insert(PlainFact(y));
        VarKind y_kind = model_.KindOf(y);
        if (y_kind == VarKind::kDataFrame) {
          if (index.is_str()) {
            facts->insert(AttrFact(y, index.str_value));
          } else if (index.is_var()) {
            const VarInfo* idx_info = model_.Find(index.var);
            if (idx_info != nullptr &&
                idx_info->kind == VarKind::kStringList) {
              // Projection: x's live columns restricted to the selection.
              facts->insert(PlainFact(index.var));
              if (x_facts.all_attrs) {
                for (const auto& c : idx_info->list_values) {
                  facts->insert(AttrFact(y, c));
                }
              } else {
                for (const auto& c : x_facts.columns) {
                  facts->insert(AttrFact(y, c));
                }
              }
            } else {
              // Filter by mask: passthrough.
              facts->insert(PlainFact(index.var));
              PassThroughAttrs(facts, x_facts, y);
            }
          }
        } else if (y_kind == VarKind::kGroupBy && index.is_str()) {
          // gb["v"]: records the aggregate column as an attr fact on the
          // groupby var; the groupby definition translates it to the df.
          facts->insert(AttrFact(y, index.str_value));
        }
        return;
      }
      case IRExprKind::kCall:
        GenCall(expr, x_facts, facts);
        return;
    }
  }

  void GenCall(const IRExpr& expr, const VarFacts& x_facts,
               FactSet* facts) const {
    const bool live = x_facts.any();
    // Global functions.
    if (!expr.global_name.empty()) {
      const std::string& fn = expr.global_name;
      if (fn == "print" || fn == "plot" || fn == "checksum") {
        for (const auto& v : expr.operands) {
          if (!v.is_var()) continue;
          facts->insert(PlainFact(v.var));
          VarKind kind = model_.KindOf(v.var);
          if (kind == VarKind::kDataFrame) {
            // §3.1: printing the output of head()/info()/describe() is
            // informational display and does not pin the receiver's
            // columns. Any other whole-frame output — checksum, plot,
            // print of a real frame — uses all columns.
            const VarInfo* info = model_.Find(v.var);
            if (fn == "print" && info != nullptr && info->informational) {
              continue;
            }
            facts->insert(AllAttrsFact(v.var));
          }
        }
        return;
      }
      if (fn == "len") {
        for (const auto& v : expr.operands) GenPlain(facts, v);
        return;
      }
      // Unknown global with a dataframe argument: conservative.
      for (const auto& v : expr.operands) {
        if (!v.is_var()) continue;
        facts->insert(PlainFact(v.var));
        if (model_.KindOf(v.var) == VarKind::kDataFrame) {
          facts->insert(AllAttrsFact(v.var));
        }
      }
      return;
    }

    // Method calls.
    const std::string& recv =
        expr.object.is_var() ? expr.object.var : std::string();
    const std::string& method = expr.attr;
    VarKind recv_kind = model_.KindOf(recv);

    if (model_.IsPandasModule(recv)) {
      if (method == "concat" && live && !expr.operands.empty() &&
          expr.operands[0].is_var()) {
        // x = pd.concat([a, b]): x's column liveness flows to every
        // element frame.
        facts->insert(PlainFact(expr.operands[0].var));
        const VarInfo* list_info = model_.Find(expr.operands[0].var);
        if (list_info != nullptr) {
          for (const auto& element : list_info->list_vars) {
            facts->insert(PlainFact(element));
            PassThroughAttrs(facts, x_facts, element);
          }
        }
        return;
      }
      // read_csv / to_datetime / flush / analyze: uses of argument vars.
      if (live || method == "flush" || method == "analyze") {
        GenOperands(expr, facts);
      }
      return;
    }
    if (model_.IsExternalModule(recv)) {
      // External module call (plt.plot): dataframe args fully used (§3.4).
      for (const auto& v : expr.operands) {
        if (!v.is_var()) continue;
        facts->insert(PlainFact(v.var));
        if (model_.KindOf(v.var) == VarKind::kDataFrame) {
          facts->insert(AllAttrsFact(v.var));
        }
      }
      return;
    }
    if (recv.empty()) return;

    if (IsInformational(method)) {
      // §3.1 heuristic: *displaying* head()/info()/describe() output does
      // not count as attribute use — that exemption lives at the print
      // site, which skips the all-attrs fact for informational frames.
      // Real column liveness on the result (checksum(v), v.fare.sum()
      // after v = df.head()) observes actual data and must pass through
      // to the receiver, or column pruning corrupts the value.
      facts->insert(PlainFact(recv));
      PassThroughAttrs(facts, x_facts, recv);
      return;
    }
    if (!live && method != "compute") return;

    facts->insert(PlainFact(recv));
    switch (recv_kind) {
      case VarKind::kDataFrame: {
        if (method == "groupby") {
          // Keys are used; aggregate columns arrive as attr facts from
          // the groupby-col access.
          const VarInfo* info = model_.Find(recv);
          (void)info;
          if (!expr.operands.empty()) {
            const IRValue& keys = expr.operands[0];
            if (keys.is_str()) {
              facts->insert(AttrFact(recv, keys.str_value));
            } else if (keys.is_var()) {
              facts->insert(PlainFact(keys.var));
              const VarInfo* key_info = model_.Find(keys.var);
              if (key_info != nullptr) {
                for (const auto& k : key_info->list_values) {
                  facts->insert(AttrFact(recv, k));
                }
              } else {
                facts->insert(AllAttrsFact(recv));
              }
            }
          }
          // x (the groupby handle) attr facts name aggregate columns.
          for (const auto& c : x_facts.columns) {
            facts->insert(AttrFact(recv, c));
          }
          if (x_facts.all_attrs) facts->insert(AllAttrsFact(recv));
          return;
        }
        if (method == "merge") {
          // Both sides: keys used, x's columns may come from either.
          std::string other;
          if (!expr.operands.empty() && expr.operands[0].is_var()) {
            other = expr.operands[0].var;
            facts->insert(PlainFact(other));
          }
          auto gen_both = [&](const std::string& col) {
            facts->insert(AttrFact(recv, col));
            if (!other.empty()) facts->insert(AttrFact(other, col));
          };
          for (const auto& [name, value] : expr.kwargs) {
            if (name != "on") continue;
            if (value.is_str()) {
              gen_both(value.str_value);
            } else if (value.is_var()) {
              facts->insert(PlainFact(value.var));
              const VarInfo* keys = model_.Find(value.var);
              if (keys != nullptr) {
                for (const auto& k : keys->list_values) gen_both(k);
              }
            }
          }
          for (const auto& c : x_facts.columns) gen_both(c);
          if (x_facts.all_attrs) {
            facts->insert(AllAttrsFact(recv));
            if (!other.empty()) facts->insert(AllAttrsFact(other));
          }
          return;
        }
        if (method == "rename") {
          // x.b -> recv.a for columns={a: b}; approximate with
          // passthrough plus the mapping handled by name.
          std::map<std::string, std::string> reverse;
          for (const auto& [name, value] : expr.kwargs) {
            if (name != "columns" || !value.is_var()) continue;
            facts->insert(PlainFact(value.var));
          }
          // Without tracking dict contents per-var, be conservative only
          // about renamed columns: passthrough everything.
          PassThroughAttrs(facts, x_facts, recv);
          if (!x_facts.columns.empty() || x_facts.all_attrs) {
            // Renamed source columns must stay live too.
            facts->insert(AllAttrsFact(recv));
          }
          return;
        }
        if (method == "sort_values" || method == "drop_duplicates") {
          // Key columns used; values pass through.
          for (const auto& [name, value] : expr.kwargs) {
            if (name != "by" && name != "subset") continue;
            if (value.is_str()) {
              facts->insert(AttrFact(recv, value.str_value));
            } else if (value.is_var()) {
              facts->insert(PlainFact(value.var));
              const VarInfo* keys = model_.Find(value.var);
              if (keys != nullptr) {
                for (const auto& k : keys->list_values) {
                  facts->insert(AttrFact(recv, k));
                }
              } else {
                facts->insert(AllAttrsFact(recv));
              }
            }
          }
          if (!expr.operands.empty()) {
            const IRValue& by = expr.operands[0];
            if (by.is_str()) {
              facts->insert(AttrFact(recv, by.str_value));
            } else if (by.is_var()) {
              facts->insert(PlainFact(by.var));
              const VarInfo* keys = model_.Find(by.var);
              if (keys != nullptr) {
                for (const auto& k : keys->list_values) {
                  facts->insert(AttrFact(recv, k));
                }
              }
            }
          }
          PassThroughAttrs(facts, x_facts, recv);
          return;
        }
        if (method == "compute") {
          // Materializes the frame: everything is needed.
          facts->insert(AllAttrsFact(recv));
          GenOperands(expr, facts);
          return;
        }
        if (method == "fillna" || method == "dropna" || method == "drop") {
          GenOperands(expr, facts);
          PassThroughAttrs(facts, x_facts, recv);
          return;
        }
        if (IsSeriesReduction(method) || method == "value_counts") {
          // Whole-frame reductions need all columns.
          facts->insert(AllAttrsFact(recv));
          return;
        }
        // Unknown dataframe method: conservative.
        facts->insert(AllAttrsFact(recv));
        GenOperands(expr, facts);
        return;
      }
      case VarKind::kSeries:
      case VarKind::kStrAccessor:
      case VarKind::kDtAccessor:
      case VarKind::kGroupByCol:
      case VarKind::kGroupBy:
        // Series-level chains: the receiver's plain liveness carries the
        // column facts back to its own definition.
        GenOperands(expr, facts);
        if (recv_kind == VarKind::kGroupByCol) {
          // The aggregate column flows via an attr fact on the handle's
          // own definition; nothing extra here.
        }
        return;
      default:
        GenOperands(expr, facts);
        return;
    }
  }

  const ProgramModel& model_;
};

}  // namespace

Result<LivenessResult> RunLivenessAnalysis(const Cfg& cfg,
                                           const ProgramModel& model) {
  const IRProgram& program = *cfg.program;
  Transfer transfer(model);

  std::vector<FactSet> block_in(cfg.blocks.size());
  std::vector<FactSet> block_out(cfg.blocks.size());

  // Backward worklist to a fixpoint.
  bool changed = true;
  int iterations = 0;
  while (changed) {
    changed = false;
    if (++iterations > 1000) {
      return Status::ExecutionError("liveness analysis did not converge");
    }
    for (int b = static_cast<int>(cfg.blocks.size()) - 1; b >= 0; --b) {
      const BasicBlock& block = cfg.blocks[b];
      FactSet out;
      for (int succ : block.succs) {
        out.insert(block_in[succ].begin(), block_in[succ].end());
      }
      FactSet in = out;
      for (auto it = block.stmts.rbegin(); it != block.stmts.rend(); ++it) {
        transfer.Apply(program.stmts[*it], &in);
      }
      if (out != block_out[b] || in != block_in[b]) {
        block_out[b] = std::move(out);
        block_in[b] = std::move(in);
        changed = true;
      }
    }
  }

  // Final pass: record per-statement In/Out sets.
  LivenessResult result;
  result.in.resize(program.stmts.size());
  result.out.resize(program.stmts.size());
  for (const auto& block : cfg.blocks) {
    FactSet facts = block_out[block.id];
    for (auto it = block.stmts.rbegin(); it != block.stmts.rend(); ++it) {
      result.out[*it] = facts;
      transfer.Apply(program.stmts[*it], &facts);
      result.in[*it] = facts;
    }
  }
  return result;
}

Result<std::vector<FactSet>> DefinitelyAssignedBefore(const Cfg& cfg) {
  const IRProgram& program = *cfg.program;
  auto transfer = [](const IRStmt& stmt, FactSet* defined) {
    if (stmt.kind == IRStmtKind::kAssign) defined->insert(stmt.target);
    if (stmt.kind == IRStmtKind::kImport) {
      defined->insert(stmt.is_from_import
                          ? stmt.imported_name
                          : (stmt.alias.empty() ? stmt.module : stmt.alias));
    }
  };

  std::vector<FactSet> block_in(cfg.blocks.size());
  std::vector<bool> visited(cfg.blocks.size(), false);
  bool changed = true;
  int iterations = 0;
  while (changed) {
    changed = false;
    if (++iterations > 1000) {
      return Status::ExecutionError("definite assignment did not converge");
    }
    for (const auto& block : cfg.blocks) {
      FactSet in;
      bool first = true;
      for (int pred : block.preds) {
        if (!visited[pred]) continue;  // unreached so far: skip in the meet
        FactSet out = block_in[pred];
        for (size_t idx : cfg.blocks[pred].stmts) {
          transfer(program.stmts[idx], &out);
        }
        if (first) {
          in = std::move(out);
          first = false;
        } else {
          FactSet meet;
          for (const auto& v : in) {
            if (out.count(v) > 0) meet.insert(v);
          }
          in = std::move(meet);
        }
      }
      if (!visited[block.id] || in != block_in[block.id]) {
        block_in[block.id] = std::move(in);
        visited[block.id] = true;
        changed = true;
      }
    }
  }

  std::vector<FactSet> before(program.stmts.size());
  for (const auto& block : cfg.blocks) {
    FactSet defined = block_in[block.id];
    for (size_t idx : block.stmts) {
      before[idx] = defined;
      transfer(program.stmts[idx], &defined);
    }
  }
  return before;
}

std::vector<std::string> LiveDataFramesAfter(const LivenessResult& liveness,
                                             const ProgramModel& model,
                                             size_t stmt) {
  std::vector<std::string> out;
  for (const auto& fact : liveness.out[stmt]) {
    if (fact.find('.') != std::string::npos) continue;  // attr fact
    if (model.KindOf(fact) == VarKind::kDataFrame &&
        fact[0] != '$') {  // temps are not user-visible dataframes
      out.push_back(fact);
    }
  }
  return out;
}

}  // namespace lafp::script
