#ifndef LAFP_SCRIPT_REWRITER_H_
#define LAFP_SCRIPT_REWRITER_H_

#include <string>
#include <vector>

#include "meta/metadata.h"
#include "script/analysis.h"
#include "script/ir.h"

namespace lafp::script {

/// Which static rewrites to apply (paper §3).
struct RewriteOptions {
  /// §3.1: add usecols=[live columns] to read_csv based on LAA.
  bool column_selection = true;
  /// §3.4: insert .compute(live_df=[...]) before external-module calls.
  bool forced_compute = true;
  /// §3.3: append pd.flush() so deferred lazy prints are emitted.
  bool insert_flush = true;
  /// §3.6: add dtype= hints (exact types + category for read-only,
  /// low-cardinality string columns) from the metadata store.
  bool metadata_dtypes = true;
  meta::MetaStore* metastore = nullptr;  // required for metadata_dtypes
  int64_t category_max_distinct = 64;
};

struct RewriteStats {
  int reads_pruned = 0;        // read_csv calls that gained usecols
  int computes_inserted = 0;   // forced-compute wrappers
  int dtype_hints_added = 0;   // read_csv calls that gained dtype=
  int category_columns = 0;    // columns hinted as category
  bool flush_inserted = false;
};

/// Run the static analyses and produce the rewritten program. The input
/// IR is not modified.
Result<IRProgram> Rewrite(const IRProgram& program,
                          const RewriteOptions& options,
                          RewriteStats* stats);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_REWRITER_H_
