#include <cctype>
#include <map>

#include "common/macros.h"
#include "script/token.h"

namespace lafp::script {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kName: return "name";
    case TokenKind::kInt: return "int";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kFStringStart: return "fstring";
    case TokenKind::kNewline: return "newline";
    case TokenKind::kIndent: return "indent";
    case TokenKind::kDedent: return "dedent";
    case TokenKind::kEndOfFile: return "eof";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kComma: return ",";
    case TokenKind::kColon: return ":";
    case TokenKind::kDot: return ".";
    case TokenKind::kAssign: return "=";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kAmp: return "&";
    case TokenKind::kPipe: return "|";
    case TokenKind::kTilde: return "~";
    case TokenKind::kIf: return "if";
    case TokenKind::kElse: return "else";
    case TokenKind::kElif: return "elif";
    case TokenKind::kWhile: return "while";
    case TokenKind::kFor: return "for";
    case TokenKind::kIn: return "in";
    case TokenKind::kAnd: return "and";
    case TokenKind::kOr: return "or";
    case TokenKind::kNot: return "not";
    case TokenKind::kTrue: return "True";
    case TokenKind::kFalse: return "False";
    case TokenKind::kNone: return "None";
    case TokenKind::kImport: return "import";
    case TokenKind::kFrom: return "from";
    case TokenKind::kAs: return "as";
    case TokenKind::kPass: return "pass";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenKind>& Keywords() {
  static const auto* kw = new std::map<std::string, TokenKind>{
      {"if", TokenKind::kIf},       {"else", TokenKind::kElse},
      {"elif", TokenKind::kElif},   {"while", TokenKind::kWhile},
      {"for", TokenKind::kFor},     {"in", TokenKind::kIn},
      {"and", TokenKind::kAnd},     {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},     {"True", TokenKind::kTrue},
      {"False", TokenKind::kFalse}, {"None", TokenKind::kNone},
      {"import", TokenKind::kImport}, {"from", TokenKind::kFrom},
      {"as", TokenKind::kAs},       {"pass", TokenKind::kPass}};
  return *kw;
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  Result<std::vector<Token>> Run() {
    indents_.push_back(0);
    while (pos_ < src_.size()) {
      LAFP_RETURN_NOT_OK(LexLine());
    }
    // Close any pending indentation.
    if (!tokens_.empty() && tokens_.back().kind != TokenKind::kNewline) {
      Emit(TokenKind::kNewline, "");
    }
    while (indents_.back() > 0) {
      indents_.pop_back();
      Emit(TokenKind::kDedent, "");
    }
    Emit(TokenKind::kEndOfFile, "");
    return std::move(tokens_);
  }

 private:
  Status LexLine() {
    // Measure indentation (spaces only; tabs count as 4).
    int indent = 0;
    size_t start = pos_;
    while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t')) {
      indent += src_[pos_] == '\t' ? 4 : 1;
      ++pos_;
    }
    if (pos_ >= src_.size()) return Status::OK();
    if (src_[pos_] == '\n' || src_[pos_] == '#') {
      // Blank or comment-only line: skip entirely.
      while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      if (pos_ < src_.size()) {
        ++pos_;
        ++line_;
      }
      return Status::OK();
    }
    (void)start;
    if (indent > indents_.back()) {
      indents_.push_back(indent);
      Emit(TokenKind::kIndent, "");
    } else {
      while (indent < indents_.back()) {
        indents_.pop_back();
        Emit(TokenKind::kDedent, "");
      }
      if (indent != indents_.back()) {
        return Err("inconsistent indentation");
      }
    }
    // Tokens until end of line; brackets allow continuation.
    int bracket_depth = 0;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++pos_;
        ++line_;
        if (bracket_depth > 0) continue;  // implicit line joining
        break;
      }
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
        continue;
      }
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      LAFP_RETURN_NOT_OK(LexToken(&bracket_depth));
    }
    Emit(TokenKind::kNewline, "");
    return Status::OK();
  }

  Status LexToken(int* bracket_depth) {
    char c = src_[pos_];
    int col = Column();
    // f-string
    if ((c == 'f' || c == 'F') && pos_ + 1 < src_.size() &&
        (src_[pos_ + 1] == '"' || src_[pos_ + 1] == '\'')) {
      return LexFString();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t begin = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      std::string word = src_.substr(begin, pos_ - begin);
      auto kw = Keywords().find(word);
      Token t;
      t.kind = kw != Keywords().end() ? kw->second : TokenKind::kName;
      t.text = std::move(word);
      t.line = line_;
      t.column = col;
      tokens_.push_back(std::move(t));
      return Status::OK();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t begin = pos_;
      bool is_float = false;
      while (pos_ < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
              ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > begin &&
               (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E')))) {
        if (src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E') {
          // A dot followed by a name char is attribute access on an int
          // literal — not supported; treat dot+digit as float.
          if (src_[pos_] == '.' && pos_ + 1 < src_.size() &&
              !std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
            break;
          }
          is_float = true;
        }
        ++pos_;
      }
      Emit(is_float ? TokenKind::kFloat : TokenKind::kInt,
           src_.substr(begin, pos_ - begin));
      return Status::OK();
    }
    if (c == '"' || c == '\'') {
      std::string value;
      LAFP_RETURN_NOT_OK(LexQuoted(c, &value));
      Emit(TokenKind::kString, std::move(value));
      return Status::OK();
    }
    auto two = [&](char second, TokenKind kind) -> bool {
      if (pos_ + 1 < src_.size() && src_[pos_ + 1] == second) {
        Emit(kind, std::string(1, c) + second);
        pos_ += 2;
        return true;
      }
      return false;
    };
    switch (c) {
      case '(':
        ++*bracket_depth;
        Emit(TokenKind::kLParen, "(");
        break;
      case ')':
        --*bracket_depth;
        Emit(TokenKind::kRParen, ")");
        break;
      case '[':
        ++*bracket_depth;
        Emit(TokenKind::kLBracket, "[");
        break;
      case ']':
        --*bracket_depth;
        Emit(TokenKind::kRBracket, "]");
        break;
      case '{':
        ++*bracket_depth;
        Emit(TokenKind::kLBrace, "{");
        break;
      case '}':
        --*bracket_depth;
        Emit(TokenKind::kRBrace, "}");
        break;
      case ',':
        Emit(TokenKind::kComma, ",");
        break;
      case ':':
        Emit(TokenKind::kColon, ":");
        break;
      case '.':
        Emit(TokenKind::kDot, ".");
        break;
      case '=':
        if (two('=', TokenKind::kEq)) return Status::OK();
        Emit(TokenKind::kAssign, "=");
        break;
      case '!':
        if (two('=', TokenKind::kNe)) return Status::OK();
        return Err("unexpected '!'");
      case '<':
        if (two('=', TokenKind::kLe)) return Status::OK();
        Emit(TokenKind::kLt, "<");
        break;
      case '>':
        if (two('=', TokenKind::kGe)) return Status::OK();
        Emit(TokenKind::kGt, ">");
        break;
      case '+':
        Emit(TokenKind::kPlus, "+");
        break;
      case '-':
        Emit(TokenKind::kMinus, "-");
        break;
      case '*':
        Emit(TokenKind::kStar, "*");
        break;
      case '/':
        Emit(TokenKind::kSlash, "/");
        break;
      case '%':
        Emit(TokenKind::kPercent, "%");
        break;
      case '&':
        Emit(TokenKind::kAmp, "&");
        break;
      case '|':
        Emit(TokenKind::kPipe, "|");
        break;
      case '~':
        Emit(TokenKind::kTilde, "~");
        break;
      default:
        return Err(std::string("unexpected character '") + c + "'");
    }
    ++pos_;  // single-char token
    return Status::OK();
  }

  Status LexQuoted(char quote, std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != quote) {
      char c = src_[pos_];
      if (c == '\n') return Err("unterminated string");
      if (c == '\\' && pos_ + 1 < src_.size()) {
        char next = src_[pos_ + 1];
        switch (next) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '\'':
            out->push_back('\'');
            break;
          case '"':
            out->push_back('"');
            break;
          default:
            out->push_back(next);
        }
        pos_ += 2;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    if (pos_ >= src_.size()) return Err("unterminated string");
    ++pos_;  // closing quote
    return Status::OK();
  }

  Status LexFString() {
    int col = Column();
    ++pos_;  // 'f'
    char quote = src_[pos_];
    ++pos_;
    std::vector<std::string> parts;  // even: literal, odd: expression
    std::string literal;
    while (pos_ < src_.size() && src_[pos_] != quote) {
      char c = src_[pos_];
      if (c == '\n') return Err("unterminated f-string");
      if (c == '{') {
        if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '{') {
          literal.push_back('{');
          pos_ += 2;
          continue;
        }
        parts.push_back(std::move(literal));
        literal.clear();
        ++pos_;
        std::string expr;
        int depth = 1;
        while (pos_ < src_.size() && depth > 0) {
          if (src_[pos_] == '{') ++depth;
          if (src_[pos_] == '}') {
            --depth;
            if (depth == 0) break;
          }
          expr.push_back(src_[pos_]);
          ++pos_;
        }
        if (pos_ >= src_.size()) return Err("unterminated f-string brace");
        ++pos_;  // '}'
        parts.push_back(std::move(expr));
        continue;
      }
      if (c == '}' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '}') {
        literal.push_back('}');
        pos_ += 2;
        continue;
      }
      literal.push_back(c);
      ++pos_;
    }
    if (pos_ >= src_.size()) return Err("unterminated f-string");
    ++pos_;  // closing quote
    parts.push_back(std::move(literal));
    Token t;
    t.kind = TokenKind::kFStringStart;
    t.line = line_;
    t.column = col;
    t.fstring_parts = std::move(parts);
    tokens_.push_back(std::move(t));
    return Status::OK();
  }

  void Emit(TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_;
    t.column = Column();
    tokens_.push_back(std::move(t));
  }

  int Column() const {
    size_t line_start = src_.rfind('\n', pos_ == 0 ? 0 : pos_ - 1);
    return static_cast<int>(pos_ -
                            (line_start == std::string::npos
                                 ? 0
                                 : line_start + 1)) +
           1;
  }

  Status Err(const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line_) + ": " + msg);
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  std::vector<int> indents_;
  std::vector<Token> tokens_;
};

}  // namespace

Result<std::vector<Token>> Lex(const std::string& source) {
  return Lexer(source).Run();
}

}  // namespace lafp::script
