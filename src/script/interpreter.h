#ifndef LAFP_SCRIPT_INTERPRETER_H_
#define LAFP_SCRIPT_INTERPRETER_H_

#include <map>
#include <string>
#include <vector>

#include "lazy/fat_dataframe.h"
#include "script/ir.h"
#include "script/model.h"

namespace lafp::script {

/// A runtime value of the PdScript interpreter. Dataframes and lazily
/// computed scalars wrap the LaFP handles, so the interpreter *is* the
/// execution layer the paper's rewritten programs run on.
struct Value {
  enum class Kind : int {
    kNone = 0,
    kInt,
    kFloat,
    kBool,
    kStr,
    kFrame,        // FatDataFrame (dataframe or series)
    kLazyScalar,   // reductions / len
    kGroupBy,      // df.groupby(keys)
    kGroupByCol,   // df.groupby(keys)[col]
    kDtAccessor,   // series.dt
    kStrAccessor,  // series.str
    kModule,       // pd / plt
    kList,
    kDict,
    kFormatted,    // an f-string with (possibly lazy) embedded values
  };

  Kind kind = Kind::kNone;
  int64_t i = 0;
  double f = 0.0;
  bool b = false;
  std::string s;                       // kStr / kModule name
  lazy::FatDataFrame frame;            // kFrame / accessor+groupby base
  lazy::LazyScalar lazy_scalar;        // kLazyScalar
  std::vector<std::string> keys;       // kGroupBy / kGroupByCol
  std::string column;                  // kGroupByCol
  std::vector<Value> list;             // kList
  std::map<std::string, Value> dict;   // kDict (string keys)
  // kFormatted: literals.size() == parts.size() + 1
  std::vector<std::string> literals;
  std::vector<Value> parts;

  static Value None() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.kind = Kind::kInt;
    out.i = v;
    return out;
  }
  static Value Float(double v) {
    Value out;
    out.kind = Kind::kFloat;
    out.f = v;
    return out;
  }
  static Value Bool(bool v) {
    Value out;
    out.kind = Kind::kBool;
    out.b = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.kind = Kind::kStr;
    out.s = std::move(v);
    return out;
  }
  static Value Frame(lazy::FatDataFrame f) {
    Value out;
    out.kind = Kind::kFrame;
    out.frame = std::move(f);
    return out;
  }

  bool is_numeric() const {
    return kind == Kind::kInt || kind == Kind::kFloat ||
           kind == Kind::kBool;
  }
  double AsDouble() const {
    switch (kind) {
      case Kind::kInt:
        return static_cast<double>(i);
      case Kind::kFloat:
        return f;
      case Kind::kBool:
        return b ? 1.0 : 0.0;
      default:
        return 0.0;
    }
  }
};

struct InterpreterStats {
  int64_t statements_executed = 0;
};

/// Execute a lowered program against a LaFP session. The session's mode
/// decides semantics: eager (plain Pandas/Modin), lazy without lazy print
/// (hand-ported Dask), or full LaFP.
Status ExecuteIR(const IRProgram& program, const ProgramModel& model,
                 lazy::Session* session,
                 InterpreterStats* stats = nullptr);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_INTERPRETER_H_
