#include <sstream>

#include "common/macros.h"
#include "script/ir.h"

namespace lafp::script {

std::string IRValue::ToSource() const {
  if (is_var()) return var;
  switch (ctype) {
    case ConstType::kInt:
      return std::to_string(int_value);
    case ConstType::kFloat: {
      std::ostringstream os;
      os << float_value;
      std::string s = os.str();
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ConstType::kStr: {
      std::string out = "\"";
      for (char c : str_value) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      return out + "\"";
    }
    case ConstType::kBool:
      return bool_value ? "True" : "False";
    case ConstType::kNone:
      return "None";
  }
  return "?";
}

std::string IRExpr::ToSource() const {
  std::ostringstream os;
  switch (kind) {
    case IRExprKind::kAtom:
      return atom.ToSource();
    case IRExprKind::kList: {
      os << "[";
      for (size_t i = 0; i < operands.size(); ++i) {
        if (i > 0) os << ", ";
        os << operands[i].ToSource();
      }
      os << "]";
      return os.str();
    }
    case IRExprKind::kDict: {
      os << "{";
      for (size_t i = 0; i < dict_items.size(); ++i) {
        if (i > 0) os << ", ";
        os << dict_items[i].first.ToSource() << ": "
           << dict_items[i].second.ToSource();
      }
      os << "}";
      return os.str();
    }
    case IRExprKind::kBinOp:
    case IRExprKind::kCompare:
      return operands[0].ToSource() + " " + op + " " +
             operands[1].ToSource();
    case IRExprKind::kUnaryOp:
      if (op == "not") return "not " + operands[0].ToSource();
      return op + operands[0].ToSource();
    case IRExprKind::kGetAttr:
      return object.ToSource() + "." + attr;
    case IRExprKind::kGetItem:
      return object.ToSource() + "[" + operands[0].ToSource() + "]";
    case IRExprKind::kCall: {
      if (global_name.empty()) {
        os << object.ToSource() << "." << attr << "(";
      } else {
        os << global_name << "(";
      }
      bool first = true;
      for (const auto& arg : operands) {
        if (!first) os << ", ";
        first = false;
        os << arg.ToSource();
      }
      for (const auto& [name, value] : kwargs) {
        if (!first) os << ", ";
        first = false;
        os << name << "=" << value.ToSource();
      }
      os << ")";
      return os.str();
    }
    case IRExprKind::kFString: {
      os << "f\"";
      for (size_t i = 0; i < fstring_literals.size(); ++i) {
        os << fstring_literals[i];
        if (i < operands.size()) os << "{" << operands[i].ToSource() << "}";
      }
      os << "\"";
      return os.str();
    }
  }
  return "?";
}

std::string IRStmt::ToSource() const {
  switch (kind) {
    case IRStmtKind::kAssign:
      return target + " = " + expr.ToSource();
    case IRStmtKind::kStoreItem:
      return object.ToSource() + "[" + key.ToSource() +
             "] = " + value.ToSource();
    case IRStmtKind::kExprStmt:
      return expr.ToSource();
    case IRStmtKind::kLabel:
      return label + ":";
    case IRStmtKind::kGoto:
      return "goto " + label;
    case IRStmtKind::kBranch:
      return "if " + cond.ToSource() + " goto " + true_label + " else " +
             false_label;
    case IRStmtKind::kImport:
      if (is_from_import) return "from " + module + " import " + imported_name;
      return "import " + module + (alias.empty() ? "" : " as " + alias);
    case IRStmtKind::kNop:
      return "nop";
  }
  return "?";
}

std::string IRProgram::ToSource() const {
  std::string out;
  for (const auto& stmt : stmts) {
    if (stmt.kind != IRStmtKind::kLabel) out += "  ";
    out += stmt.ToSource();
    out += "\n";
  }
  return out;
}

namespace {

class Lowerer {
 public:
  Result<IRProgram> Run(const Module& module) {
    for (const auto& stmt : module.stmts) {
      LAFP_RETURN_NOT_OK(LowerStmt(*stmt));
    }
    return std::move(program_);
  }

 private:
  std::string NewLabel() {
    return "L" + std::to_string(label_counter_++);
  }

  void Emit(IRStmt stmt) { program_.stmts.push_back(std::move(stmt)); }

  void EmitLabel(const std::string& label) {
    IRStmt stmt;
    stmt.kind = IRStmtKind::kLabel;
    stmt.label = label;
    Emit(std::move(stmt));
  }

  void EmitGoto(const std::string& label) {
    IRStmt stmt;
    stmt.kind = IRStmtKind::kGoto;
    stmt.label = label;
    Emit(std::move(stmt));
  }

  Status LowerStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kImport: {
        IRStmt out;
        out.kind = IRStmtKind::kImport;
        out.module = stmt.module;
        out.alias = stmt.alias;
        out.line = stmt.line;
        Emit(std::move(out));
        return Status::OK();
      }
      case StmtKind::kFromImport: {
        IRStmt out;
        out.kind = IRStmtKind::kImport;
        out.is_from_import = true;
        out.module = stmt.module;
        out.imported_name = stmt.imported_name;
        out.line = stmt.line;
        Emit(std::move(out));
        return Status::OK();
      }
      case StmtKind::kPass:
        return Status::OK();
      case StmtKind::kAssign: {
        if (stmt.target->kind == ExprKind::kName) {
          LAFP_ASSIGN_OR_RETURN(IRExpr rhs, LowerExprTop(*stmt.value));
          IRStmt out;
          out.kind = IRStmtKind::kAssign;
          out.target = stmt.target->name;
          out.expr = std::move(rhs);
          out.line = stmt.line;
          Emit(std::move(out));
          return Status::OK();
        }
        if (stmt.target->kind == ExprKind::kSubscript) {
          LAFP_ASSIGN_OR_RETURN(IRValue object,
                                LowerToAtom(*stmt.target->lhs));
          LAFP_ASSIGN_OR_RETURN(IRValue key, LowerToAtom(*stmt.target->rhs));
          LAFP_ASSIGN_OR_RETURN(IRValue value, LowerToAtom(*stmt.value));
          IRStmt out;
          out.kind = IRStmtKind::kStoreItem;
          out.object = std::move(object);
          out.key = std::move(key);
          out.value = std::move(value);
          out.line = stmt.line;
          Emit(std::move(out));
          return Status::OK();
        }
        return Status::ParseError("unsupported assignment target: " +
                                  stmt.target->ToSource());
      }
      case StmtKind::kExpr: {
        LAFP_ASSIGN_OR_RETURN(IRExpr expr, LowerExprTop(*stmt.value));
        IRStmt out;
        out.kind = IRStmtKind::kExprStmt;
        out.expr = std::move(expr);
        out.line = stmt.line;
        Emit(std::move(out));
        return Status::OK();
      }
      case StmtKind::kIf: {
        LAFP_ASSIGN_OR_RETURN(IRValue cond, LowerToAtom(*stmt.value));
        std::string then_label = NewLabel();
        std::string else_label = NewLabel();
        std::string end_label =
            stmt.else_body.empty() ? else_label : NewLabel();
        IRStmt branch;
        branch.kind = IRStmtKind::kBranch;
        branch.cond = std::move(cond);
        branch.true_label = then_label;
        branch.false_label = else_label;
        branch.line = stmt.line;
        Emit(std::move(branch));
        EmitLabel(then_label);
        for (const auto& s : stmt.body) LAFP_RETURN_NOT_OK(LowerStmt(*s));
        if (!stmt.else_body.empty()) {
          EmitGoto(end_label);
          EmitLabel(else_label);
          for (const auto& s : stmt.else_body) {
            LAFP_RETURN_NOT_OK(LowerStmt(*s));
          }
          EmitLabel(end_label);
        } else {
          EmitLabel(else_label);
        }
        return Status::OK();
      }
      case StmtKind::kFor: {
        // Desugared to a while loop. Two forms:
        //   for i in range(a[, b]):  ->  i = a; while i < b: body; i += 1
        //   for x in <list>:         ->  index loop over the sequence
        const Expr& iterable = *stmt.value;
        bool is_range = iterable.kind == ExprKind::kCall &&
                        iterable.lhs->kind == ExprKind::kName &&
                        iterable.lhs->name == "range";
        std::string counter;   // the loop counter variable
        IRValue end_value;     // loop bound
        std::string list_var;  // sequence form only
        if (is_range) {
          if (iterable.elements.empty() || iterable.elements.size() > 2) {
            return Status::ParseError("range() takes 1 or 2 arguments");
          }
          counter = stmt.loop_var;
          IRValue start = IRValue::Int(0);
          if (iterable.elements.size() == 2) {
            LAFP_ASSIGN_OR_RETURN(start, LowerToAtom(*iterable.elements[0]));
            LAFP_ASSIGN_OR_RETURN(end_value,
                                  LowerToAtom(*iterable.elements[1]));
          } else {
            LAFP_ASSIGN_OR_RETURN(end_value,
                                  LowerToAtom(*iterable.elements[0]));
          }
          IRStmt init;
          init.kind = IRStmtKind::kAssign;
          init.target = counter;
          init.expr.kind = IRExprKind::kAtom;
          init.expr.atom = start;
          init.line = stmt.line;
          Emit(std::move(init));
        } else {
          LAFP_ASSIGN_OR_RETURN(IRValue seq, LowerToAtom(iterable));
          if (!seq.is_var()) {
            return Status::ParseError("for-loop iterable must be a "
                                      "range() or a sequence value");
          }
          list_var = seq.var;
          // A named local (not a compiler temp): temps are single-use by
          // convention and would be inlined away by the code generator.
          counter = "_for_i" + std::to_string(program_.temp_counter++);
          IRStmt init;
          init.kind = IRStmtKind::kAssign;
          init.target = counter;
          init.expr.kind = IRExprKind::kAtom;
          init.expr.atom = IRValue::Int(0);
          init.line = stmt.line;
          Emit(std::move(init));
          IRStmt length;
          length.kind = IRStmtKind::kAssign;
          length.target = "_for_n" + std::to_string(program_.temp_counter++);
          length.expr.kind = IRExprKind::kCall;
          length.expr.global_name = "len";
          length.expr.operands.push_back(IRValue::Var(list_var));
          length.line = stmt.line;
          end_value = IRValue::Var(length.target);
          Emit(std::move(length));
        }
        std::string head_label = NewLabel();
        std::string body_label = NewLabel();
        std::string end_label = NewLabel();
        EmitLabel(head_label);
        IRStmt cond;
        cond.kind = IRStmtKind::kAssign;
        cond.target = program_.NewTemp();
        cond.expr.kind = IRExprKind::kCompare;
        cond.expr.op = "<";
        cond.expr.operands.push_back(IRValue::Var(counter));
        cond.expr.operands.push_back(end_value);
        cond.line = stmt.line;
        std::string cond_var = cond.target;
        Emit(std::move(cond));
        IRStmt branch;
        branch.kind = IRStmtKind::kBranch;
        branch.cond = IRValue::Var(cond_var);
        branch.true_label = body_label;
        branch.false_label = end_label;
        branch.line = stmt.line;
        Emit(std::move(branch));
        EmitLabel(body_label);
        if (!is_range) {
          IRStmt bind;
          bind.kind = IRStmtKind::kAssign;
          bind.target = stmt.loop_var;
          bind.expr.kind = IRExprKind::kGetItem;
          bind.expr.object = IRValue::Var(list_var);
          bind.expr.operands.push_back(IRValue::Var(counter));
          bind.line = stmt.line;
          Emit(std::move(bind));
        }
        for (const auto& s : stmt.body) LAFP_RETURN_NOT_OK(LowerStmt(*s));
        IRStmt increment;
        increment.kind = IRStmtKind::kAssign;
        increment.target = counter;
        increment.expr.kind = IRExprKind::kBinOp;
        increment.expr.op = "+";
        increment.expr.operands.push_back(IRValue::Var(counter));
        increment.expr.operands.push_back(IRValue::Int(1));
        increment.line = stmt.line;
        Emit(std::move(increment));
        EmitGoto(head_label);
        EmitLabel(end_label);
        return Status::OK();
      }
      case StmtKind::kWhile: {
        std::string head_label = NewLabel();
        std::string body_label = NewLabel();
        std::string end_label = NewLabel();
        EmitLabel(head_label);
        LAFP_ASSIGN_OR_RETURN(IRValue cond, LowerToAtom(*stmt.value));
        IRStmt branch;
        branch.kind = IRStmtKind::kBranch;
        branch.cond = std::move(cond);
        branch.true_label = body_label;
        branch.false_label = end_label;
        branch.line = stmt.line;
        Emit(std::move(branch));
        EmitLabel(body_label);
        for (const auto& s : stmt.body) LAFP_RETURN_NOT_OK(LowerStmt(*s));
        EmitGoto(head_label);
        EmitLabel(end_label);
        return Status::OK();
      }
    }
    return Status::ParseError("unsupported statement");
  }

  /// Lower an expression that may keep one top-level operator (assigned
  /// directly to the statement target).
  Result<IRExpr> LowerExprTop(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kName:
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kStringLit:
      case ExprKind::kBoolLit:
      case ExprKind::kNoneLit: {
        LAFP_ASSIGN_OR_RETURN(IRValue atom, LowerToAtom(expr));
        IRExpr out;
        out.kind = IRExprKind::kAtom;
        out.atom = std::move(atom);
        return out;
      }
      case ExprKind::kList: {
        IRExpr out;
        out.kind = IRExprKind::kList;
        for (const auto& elem : expr.elements) {
          LAFP_ASSIGN_OR_RETURN(IRValue v, LowerToAtom(*elem));
          out.operands.push_back(std::move(v));
        }
        return out;
      }
      case ExprKind::kDict: {
        IRExpr out;
        out.kind = IRExprKind::kDict;
        for (size_t i = 0; i < expr.dict_keys.size(); ++i) {
          LAFP_ASSIGN_OR_RETURN(IRValue k, LowerToAtom(*expr.dict_keys[i]));
          LAFP_ASSIGN_OR_RETURN(IRValue v,
                                LowerToAtom(*expr.dict_values[i]));
          out.dict_items.emplace_back(std::move(k), std::move(v));
        }
        return out;
      }
      case ExprKind::kBinOp:
      case ExprKind::kCompare: {
        IRExpr out;
        out.kind = expr.kind == ExprKind::kBinOp ? IRExprKind::kBinOp
                                                 : IRExprKind::kCompare;
        out.op = expr.name;
        LAFP_ASSIGN_OR_RETURN(IRValue l, LowerToAtom(*expr.lhs));
        LAFP_ASSIGN_OR_RETURN(IRValue r, LowerToAtom(*expr.rhs));
        out.operands.push_back(std::move(l));
        out.operands.push_back(std::move(r));
        return out;
      }
      case ExprKind::kUnaryOp: {
        IRExpr out;
        out.kind = IRExprKind::kUnaryOp;
        out.op = expr.name;
        LAFP_ASSIGN_OR_RETURN(IRValue v, LowerToAtom(*expr.lhs));
        out.operands.push_back(std::move(v));
        return out;
      }
      case ExprKind::kAttribute: {
        IRExpr out;
        out.kind = IRExprKind::kGetAttr;
        out.attr = expr.name;
        LAFP_ASSIGN_OR_RETURN(out.object, LowerToAtom(*expr.lhs));
        return out;
      }
      case ExprKind::kSubscript: {
        IRExpr out;
        out.kind = IRExprKind::kGetItem;
        LAFP_ASSIGN_OR_RETURN(out.object, LowerToAtom(*expr.lhs));
        LAFP_ASSIGN_OR_RETURN(IRValue idx, LowerToAtom(*expr.rhs));
        out.operands.push_back(std::move(idx));
        return out;
      }
      case ExprKind::kCall: {
        IRExpr out;
        out.kind = IRExprKind::kCall;
        const Expr& callee = *expr.lhs;
        if (callee.kind == ExprKind::kName) {
          out.global_name = callee.name;
        } else if (callee.kind == ExprKind::kAttribute) {
          out.attr = callee.name;
          LAFP_ASSIGN_OR_RETURN(out.object, LowerToAtom(*callee.lhs));
        } else {
          return Status::ParseError("unsupported callee: " +
                                    callee.ToSource());
        }
        for (const auto& arg : expr.elements) {
          LAFP_ASSIGN_OR_RETURN(IRValue v, LowerToAtom(*arg));
          out.operands.push_back(std::move(v));
        }
        for (const auto& kw : expr.kwargs) {
          LAFP_ASSIGN_OR_RETURN(IRValue v, LowerToAtom(*kw.value));
          out.kwargs.emplace_back(kw.name, std::move(v));
        }
        return out;
      }
      case ExprKind::kFString: {
        IRExpr out;
        out.kind = IRExprKind::kFString;
        out.fstring_literals = expr.fstring_literals;
        for (const auto& embedded : expr.elements) {
          LAFP_ASSIGN_OR_RETURN(IRValue v, LowerToAtom(*embedded));
          out.operands.push_back(std::move(v));
        }
        return out;
      }
    }
    return Status::ParseError("unsupported expression");
  }

  /// Lower to a constant or variable, introducing temps as needed.
  Result<IRValue> LowerToAtom(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kName:
        return IRValue::Var(expr.name);
      case ExprKind::kIntLit:
        return IRValue::Int(expr.int_value);
      case ExprKind::kFloatLit:
        return IRValue::Float(expr.float_value);
      case ExprKind::kStringLit:
        return IRValue::Str(expr.str_value);
      case ExprKind::kBoolLit:
        return IRValue::Bool(expr.bool_value);
      case ExprKind::kNoneLit:
        return IRValue::None();
      default: {
        LAFP_ASSIGN_OR_RETURN(IRExpr lowered, LowerExprTop(expr));
        std::string temp = program_.NewTemp();
        IRStmt stmt;
        stmt.kind = IRStmtKind::kAssign;
        stmt.target = temp;
        stmt.expr = std::move(lowered);
        stmt.line = expr.line;
        Emit(std::move(stmt));
        return IRValue::Var(temp);
      }
    }
  }

  IRProgram program_;
  int label_counter_ = 0;
};

}  // namespace

Result<IRProgram> LowerToIR(const Module& module) {
  return Lowerer().Run(module);
}

}  // namespace lafp::script
