#ifndef LAFP_SCRIPT_CODEGEN_H_
#define LAFP_SCRIPT_CODEGEN_H_

#include <string>

#include "script/ir.h"

namespace lafp::script {

/// Reconstruct structured source from (possibly rewritten) SCIRPy — the
/// paper's IR-to-Python back end (§2.2): basic-block/branch/loop regions
/// are rebuilt from the label structure and compiler temporaries are
/// inlined back into expressions, so `read_csv` rewrites come out as in
/// the paper's Figure 4.
Result<std::string> GenerateSource(const IRProgram& program);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_CODEGEN_H_
