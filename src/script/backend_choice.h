#ifndef LAFP_SCRIPT_BACKEND_CHOICE_H_
#define LAFP_SCRIPT_BACKEND_CHOICE_H_

#include <string>
#include <vector>

#include "exec/backend.h"
#include "meta/metadata.h"

namespace lafp::script {

/// Implemented paper future work (§2.5, §3.6, §6): automated choice of
/// backend "based on factors such as size of the datasets and row order
/// dependence", using the metadata store's statistics and the same static
/// analyses the rewriter runs.
struct BackendChoice {
  exec::BackendKind backend = exec::BackendKind::kPandas;
  /// Estimated eager working set: per-read in-memory size of the columns
  /// LAA proves live, times a working-set factor for intermediates.
  int64_t estimated_bytes = 0;
  /// The program computes a row ordering it then consumes (sort_values
  /// feeding further computation) — Dask's lack of native row order makes
  /// it a weaker fit (§5.2); noted in the rationale.
  bool order_sensitive = false;
  std::string rationale;
};

struct BackendChoiceOptions {
  /// The memory the eager backends may use (the machine's RAM in the
  /// paper; the tracked budget here).
  int64_t memory_budget = 0;
  /// Eager engines hold inputs plus intermediate copies and hash scratch;
  /// the estimate is scaled by this before comparing to the budget.
  double working_set_factor = 2.5;
  meta::MetaStore* metastore = nullptr;  // required
};

/// Analyze `source` and pick the backend the paper's heuristics imply:
/// Pandas when the (column-pruned) working set fits the budget — it is
/// the fastest in-memory engine (Fig. 13) — otherwise Dask, which
/// streams. Programs whose datasets cannot be estimated (non-constant
/// paths, missing files) conservatively choose Dask.
Result<BackendChoice> ChooseBackend(const std::string& source,
                                    const BackendChoiceOptions& options);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_BACKEND_CHOICE_H_
