#include "script/rewriter.h"

#include <algorithm>
#include <fstream>

#include "common/macros.h"
#include "io/columnar.h"
#include "io/csv.h"

namespace lafp::script {

namespace {

bool IsFileRead(const IRStmt& stmt, const ProgramModel& model) {
  return stmt.kind == IRStmtKind::kAssign &&
         stmt.expr.kind == IRExprKind::kCall &&
         stmt.expr.is_method_call() &&
         (stmt.expr.attr == "read_csv" || stmt.expr.attr == "read_lfc") &&
         stmt.expr.object.is_var() &&
         model.IsPandasModule(stmt.expr.object.var);
}

bool HasKwarg(const IRExpr& expr, const std::string& name) {
  for (const auto& [n, _] : expr.kwargs) {
    if (n == name) return true;
  }
  return false;
}

/// Restrict liveness-derived columns to those actually present in the
/// CSV header. Liveness over-approximates across merges (a column may
/// come from either side); reading a column the file lacks would fail.
void FilterToFileColumns(const std::string& path,
                         std::vector<std::string>* cols) {
  std::vector<std::string> fields;
  if (io::IsLfcFile(path)) {
    auto info = io::ReadLfcInfo(path);
    if (!info.ok()) return;  // cannot verify: leave as-is
    for (const auto& c : info->columns) fields.push_back(c.name);
  } else {
    std::ifstream in(path);
    if (!in.is_open()) return;  // cannot verify: leave as-is
    std::string header;
    if (!std::getline(in, header)) return;
    if (!header.empty() && header.back() == '\r') header.pop_back();
    fields = io::SplitCsvLine(header, ',');
  }
  cols->erase(std::remove_if(cols->begin(), cols->end(),
                             [&](const std::string& c) {
                               return std::find(fields.begin(), fields.end(),
                                                c) == fields.end();
                             }),
              cols->end());
}

/// An external-module call whose arguments include dataframe variables
/// (§3.4 forced-computation sites).
std::vector<size_t> ExternalFrameArgs(const IRExpr& expr,
                                      const ProgramModel& model) {
  std::vector<size_t> out;
  bool external =
      (expr.kind == IRExprKind::kCall && expr.is_method_call() &&
       expr.object.is_var() && model.IsExternalModule(expr.object.var)) ||
      (expr.kind == IRExprKind::kCall &&
       (expr.global_name == "plot" || expr.global_name == "checksum"));
  if (!external) return out;
  for (size_t i = 0; i < expr.operands.size(); ++i) {
    const IRValue& arg = expr.operands[i];
    if (arg.is_var() &&
        model.KindOf(arg.var) == VarKind::kDataFrame) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace

namespace {

/// Variables that (transitively) feed a branch condition. A len() over a
/// lazy frame whose result reaches a branch forces computation at the
/// branch; the rewriter gives that forcing point live_df hints too.
std::set<std::string> BranchFeedingVars(const IRProgram& program) {
  std::set<std::string> vars;
  for (const auto& stmt : program.stmts) {
    if (stmt.kind == IRStmtKind::kBranch && stmt.cond.is_var()) {
      vars.insert(stmt.cond.var);
    }
  }
  // Propagate backwards through scalar assignments to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = program.stmts.rbegin(); it != program.stmts.rend();
         ++it) {
      const IRStmt& stmt = *it;
      if (stmt.kind != IRStmtKind::kAssign ||
          vars.count(stmt.target) == 0) {
        continue;
      }
      auto add = [&](const IRValue& v) {
        if (v.is_var() && vars.insert(v.var).second) changed = true;
      };
      for (const auto& v : stmt.expr.operands) add(v);
      if (stmt.expr.kind == IRExprKind::kAtom) add(stmt.expr.atom);
    }
  }
  return vars;
}

}  // namespace

Result<IRProgram> Rewrite(const IRProgram& program,
                          const RewriteOptions& options,
                          RewriteStats* stats) {
  RewriteStats local;
  if (stats == nullptr) stats = &local;

  std::set<std::string> branch_feeding = BranchFeedingVars(program);
  ProgramModel model = BuildProgramModel(program);
  LAFP_ASSIGN_OR_RETURN(Cfg cfg, BuildCfg(program));
  LAFP_ASSIGN_OR_RETURN(LivenessResult liveness,
                        RunLivenessAnalysis(cfg, model));
  LAFP_ASSIGN_OR_RETURN(std::vector<FactSet> defined_before,
                        DefinitelyAssignedBefore(cfg));

  IRProgram out;
  out.temp_counter = program.temp_counter;

  std::string pandas_alias =
      model.pandas_aliases.empty() ? "pd" : *model.pandas_aliases.begin();

  for (size_t i = 0; i < program.stmts.size(); ++i) {
    IRStmt stmt = program.stmts[i];

    // ---- §3.1 column selection + §3.6 dtype hints on file reads ----
    if (IsFileRead(stmt, model)) {
      bool all_columns = false;
      std::vector<std::string> live_cols =
          liveness.LiveColumnsAfter(i, stmt.target, &all_columns);
      std::sort(live_cols.begin(), live_cols.end());
      if (!stmt.expr.operands.empty() && stmt.expr.operands[0].is_str()) {
        FilterToFileColumns(stmt.expr.operands[0].str_value, &live_cols);
      }

      bool pruned = false;
      if (options.column_selection && !all_columns && !live_cols.empty() &&
          !HasKwarg(stmt.expr, "usecols")) {
        IRStmt list_stmt;
        list_stmt.kind = IRStmtKind::kAssign;
        list_stmt.target = out.NewTemp();
        list_stmt.expr.kind = IRExprKind::kList;
        for (const auto& c : live_cols) {
          list_stmt.expr.operands.push_back(IRValue::Str(c));
        }
        list_stmt.line = stmt.line;
        stmt.expr.kwargs.emplace_back("usecols",
                                      IRValue::Var(list_stmt.target));
        out.stmts.push_back(std::move(list_stmt));
        pruned = true;
        ++stats->reads_pruned;
      }

      // §3.6 dtype hints sample the CSV text; LFC files store exact
      // types in their footer, so hints are both unneeded and unparsable.
      if (options.metadata_dtypes && options.metastore != nullptr &&
          stmt.expr.attr == "read_csv" &&
          !stmt.expr.operands.empty() && stmt.expr.operands[0].is_str() &&
          !io::IsLfcFile(stmt.expr.operands[0].str_value) &&
          !HasKwarg(stmt.expr, "dtype")) {
        auto md =
            options.metastore->GetOrCompute(stmt.expr.operands[0].str_value);
        if (md.ok()) {
          // Read-only columns (§3.6 safety): never assigned anywhere in
          // the program.
          std::vector<std::string> read_only;
          for (const auto& col : md->columns) {
            if (model.assigned_columns.count(col.name) == 0) {
              read_only.push_back(col.name);
            }
          }
          auto hints =
              md->DtypeHints(read_only, options.category_max_distinct);
          IRStmt dict_stmt;
          dict_stmt.kind = IRStmtKind::kAssign;
          dict_stmt.target = out.NewTemp();
          dict_stmt.expr.kind = IRExprKind::kDict;
          for (const auto& [col, type] : hints) {
            // Only hint columns that will actually be read.
            if (pruned && !std::binary_search(live_cols.begin(),
                                              live_cols.end(), col)) {
              continue;
            }
            dict_stmt.expr.dict_items.emplace_back(
                IRValue::Str(col), IRValue::Str(df::DataTypeName(type)));
            if (type == df::DataType::kCategory) {
              ++stats->category_columns;
            }
          }
          if (!dict_stmt.expr.dict_items.empty()) {
            dict_stmt.line = stmt.line;
            stmt.expr.kwargs.emplace_back("dtype",
                                          IRValue::Var(dict_stmt.target));
            out.stmts.push_back(std::move(dict_stmt));
            ++stats->dtype_hints_added;
          }
        }
      }
      out.stmts.push_back(std::move(stmt));
      continue;
    }

    // ---- §3.4 forced computation before external calls ----
    if (options.forced_compute &&
        (stmt.kind == IRStmtKind::kExprStmt ||
         stmt.kind == IRStmtKind::kAssign)) {
      std::vector<size_t> frame_args = ExternalFrameArgs(stmt.expr, model);
      // len() whose result decides a branch forces computation at the
      // branch. Rewrite `n = len(df)` into a hinted scalar compute
      // (`n = len(df).compute(live_df=[...])`): the scalar evaluation
      // streams, and the live_df hints persist the shared chain (§3.5)
      // without materializing the frame itself.
      if (frame_args.empty() && stmt.kind == IRStmtKind::kAssign &&
          stmt.expr.kind == IRExprKind::kCall &&
          stmt.expr.global_name == "len" &&
          branch_feeding.count(stmt.target) > 0 &&
          !stmt.expr.operands.empty() && stmt.expr.operands[0].is_var() &&
          model.KindOf(stmt.expr.operands[0].var) == VarKind::kDataFrame) {
        std::vector<std::string> live_dfs =
            LiveDataFramesAfter(liveness, model, i);
        IRStmt live_list;
        live_list.kind = IRStmtKind::kAssign;
        live_list.target = out.NewTemp();
        live_list.expr.kind = IRExprKind::kList;
        for (const auto& name : live_dfs) {
          if (defined_before[i].count(name) == 0) continue;
          live_list.expr.operands.push_back(IRValue::Var(name));
        }
        live_list.line = stmt.line;
        std::string scalar_temp = out.NewTemp();
        IRStmt len_stmt = stmt;
        len_stmt.target = scalar_temp;
        IRStmt force;
        force.kind = IRStmtKind::kAssign;
        force.target = stmt.target;
        force.expr.kind = IRExprKind::kCall;
        force.expr.object = IRValue::Var(scalar_temp);
        force.expr.attr = "compute";
        force.expr.kwargs.emplace_back("live_df",
                                       IRValue::Var(live_list.target));
        force.line = stmt.line;
        out.stmts.push_back(std::move(live_list));
        out.stmts.push_back(std::move(len_stmt));
        out.stmts.push_back(std::move(force));
        ++stats->computes_inserted;
        continue;
      }
      if (!frame_args.empty()) {
        // live_df list: dataframes live after this call (§3.5) — the
        // shared-subexpression persist hints.
        std::vector<std::string> live_dfs =
            LiveDataFramesAfter(liveness, model, i);
        IRStmt live_list;
        live_list.kind = IRStmtKind::kAssign;
        live_list.target = out.NewTemp();
        live_list.expr.kind = IRExprKind::kList;
        for (const auto& name : live_dfs) {
          // Liveness is a may-analysis: only names definitely assigned
          // on every path to this point may be referenced at runtime.
          if (defined_before[i].count(name) == 0) continue;
          live_list.expr.operands.push_back(IRValue::Var(name));
        }
        live_list.line = stmt.line;
        out.stmts.push_back(live_list);
        for (size_t arg_idx : frame_args) {
          IRStmt compute_stmt;
          compute_stmt.kind = IRStmtKind::kAssign;
          compute_stmt.target = out.NewTemp();
          compute_stmt.expr.kind = IRExprKind::kCall;
          compute_stmt.expr.object = stmt.expr.operands[arg_idx];
          compute_stmt.expr.attr = "compute";
          compute_stmt.expr.kwargs.emplace_back(
              "live_df", IRValue::Var(live_list.target));
          compute_stmt.line = stmt.line;
          stmt.expr.operands[arg_idx] = IRValue::Var(compute_stmt.target);
          out.stmts.push_back(std::move(compute_stmt));
          ++stats->computes_inserted;
        }
      }
    }
    out.stmts.push_back(std::move(stmt));
  }

  // ---- §3.3: flush pending lazy prints at program end ----
  if (options.insert_flush) {
    IRStmt flush;
    flush.kind = IRStmtKind::kExprStmt;
    flush.expr.kind = IRExprKind::kCall;
    flush.expr.object = IRValue::Var(pandas_alias);
    flush.expr.attr = "flush";
    out.stmts.push_back(std::move(flush));
    stats->flush_inserted = true;
  }
  return out;
}

}  // namespace lafp::script
