#ifndef LAFP_SCRIPT_ANALYZE_H_
#define LAFP_SCRIPT_ANALYZE_H_

#include <string>

#include "script/interpreter.h"
#include "script/rewriter.h"

namespace lafp::script {

/// Output of the JIT static-analysis pipeline (paper §2.4, Figure 5).
struct AnalyzeResult {
  IRProgram optimized_ir;
  ProgramModel model;        // model of the optimized program
  std::string regenerated_source;  // SCIRPy -> Python step
  RewriteStats stats;
  double analysis_seconds = 0.0;  // the overhead the paper reports (§5.3)
};

struct AnalyzeOptions {
  RewriteOptions rewrite;
  bool regenerate_source = true;
};

/// pd.analyze(): parse -> SCIRPy -> CFG -> LAA/LDA -> rewrite ->
/// regenerate. (Execution is separate: see RunProgram.)
Result<AnalyzeResult> Analyze(const std::string& source,
                              const AnalyzeOptions& options = {});

struct RunOptions {
  /// Apply the JIT static analysis and run the rewritten program (the
  /// LaFP path). When false the source runs as written (the plain
  /// Pandas/Modin/Dask baselines).
  bool analyze = true;
  AnalyzeOptions analyze_options;
};

/// End-to-end driver: the C++ analogue of executing a two-line-modified
/// Pandas program. Parses, optionally analyzes+rewrites, then interprets
/// against the session. On the non-analyzed path a trailing flush is
/// still issued so lazily deferred prints are not lost.
Status RunProgram(const std::string& source, lazy::Session* session,
                  const RunOptions& options = {},
                  InterpreterStats* stats = nullptr,
                  AnalyzeResult* analyze_result = nullptr);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_ANALYZE_H_
