#include "script/cfg.h"

#include <map>
#include <sstream>

namespace lafp::script {

Result<Cfg> BuildCfg(const IRProgram& program) {
  Cfg cfg;
  cfg.program = &program;

  // Leaders: first statement, every label, every statement following a
  // goto or branch.
  std::vector<bool> leader(program.stmts.size() + 1, false);
  if (!program.stmts.empty()) leader[0] = true;
  for (size_t i = 0; i < program.stmts.size(); ++i) {
    const IRStmt& stmt = program.stmts[i];
    if (stmt.kind == IRStmtKind::kLabel) leader[i] = true;
    if (stmt.kind == IRStmtKind::kGoto ||
        stmt.kind == IRStmtKind::kBranch) {
      if (i + 1 < program.stmts.size()) leader[i + 1] = true;
    }
  }

  std::map<std::string, int> label_block;  // label -> block id
  std::vector<int> stmt_block(program.stmts.size(), -1);
  for (size_t i = 0; i < program.stmts.size(); ++i) {
    if (leader[i]) {
      BasicBlock block;
      block.id = static_cast<int>(cfg.blocks.size());
      cfg.blocks.push_back(block);
    }
    BasicBlock& current = cfg.blocks.back();
    current.stmts.push_back(i);
    stmt_block[i] = current.id;
    if (program.stmts[i].kind == IRStmtKind::kLabel) {
      label_block[program.stmts[i].label] = current.id;
    }
  }
  // Virtual exit block.
  BasicBlock exit_block;
  exit_block.id = static_cast<int>(cfg.blocks.size());
  cfg.blocks.push_back(exit_block);
  cfg.exit = exit_block.id;

  auto resolve = [&](const std::string& label) -> Result<int> {
    auto it = label_block.find(label);
    if (it == label_block.end()) {
      return Status::ParseError("unknown label: " + label);
    }
    return it->second;
  };
  auto add_edge = [&](int from, int to) {
    cfg.blocks[from].succs.push_back(to);
    cfg.blocks[to].preds.push_back(from);
  };

  for (size_t b = 0; b + 1 < cfg.blocks.size(); ++b) {
    const BasicBlock& block = cfg.blocks[b];
    if (block.stmts.empty()) {
      add_edge(static_cast<int>(b), static_cast<int>(b) + 1);
      continue;
    }
    const IRStmt& last = program.stmts[block.stmts.back()];
    switch (last.kind) {
      case IRStmtKind::kGoto: {
        auto to = resolve(last.label);
        if (!to.ok()) return to.status();
        add_edge(block.id, *to);
        break;
      }
      case IRStmtKind::kBranch: {
        auto t = resolve(last.true_label);
        if (!t.ok()) return t.status();
        auto f = resolve(last.false_label);
        if (!f.ok()) return f.status();
        add_edge(block.id, *t);
        add_edge(block.id, *f);
        break;
      }
      default:
        add_edge(block.id, block.id + 1);
        break;
    }
  }
  return cfg;
}

std::string Cfg::ToDot() const {
  std::ostringstream os;
  os << "digraph cfg {\n  node [shape=box];\n";
  for (const auto& block : blocks) {
    os << "  b" << block.id << " [label=\"B" << block.id << "\\l";
    for (size_t idx : block.stmts) {
      std::string line = program->stmts[idx].ToSource();
      for (char& c : line) {
        if (c == '"') c = '\'';
      }
      os << line << "\\l";
    }
    os << "\"];\n";
    for (int succ : block.succs) {
      os << "  b" << block.id << " -> b" << succ << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace lafp::script
