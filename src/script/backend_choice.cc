#include "script/backend_choice.h"

#include <sstream>

#include "common/macros.h"
#include "script/analysis.h"

namespace lafp::script {

namespace {

/// True if any sort_values result feeds further computation (its target
/// variable is used afterwards): the program depends on row order.
bool DetectOrderSensitivity(const IRProgram& program,
                            const LivenessResult& liveness) {
  for (size_t i = 0; i < program.stmts.size(); ++i) {
    const IRStmt& stmt = program.stmts[i];
    if (stmt.kind != IRStmtKind::kAssign ||
        stmt.expr.kind != IRExprKind::kCall ||
        stmt.expr.attr != "sort_values") {
      continue;
    }
    if (liveness.IsLiveAfter(i, stmt.target)) return true;
  }
  return false;
}

}  // namespace

Result<BackendChoice> ChooseBackend(const std::string& source,
                                    const BackendChoiceOptions& options) {
  if (options.metastore == nullptr) {
    return Status::Invalid("ChooseBackend requires a metadata store");
  }
  LAFP_ASSIGN_OR_RETURN(Module module, Parse(source));
  LAFP_ASSIGN_OR_RETURN(IRProgram ir, LowerToIR(module));
  ProgramModel model = BuildProgramModel(ir);
  LAFP_ASSIGN_OR_RETURN(Cfg cfg, BuildCfg(ir));
  LAFP_ASSIGN_OR_RETURN(LivenessResult liveness,
                        RunLivenessAnalysis(cfg, model));

  BackendChoice choice;
  choice.order_sensitive = DetectOrderSensitivity(ir, liveness);

  bool estimable = true;
  int64_t total = 0;
  for (size_t i = 0; i < ir.stmts.size(); ++i) {
    const IRStmt& stmt = ir.stmts[i];
    if (stmt.kind != IRStmtKind::kAssign ||
        stmt.expr.kind != IRExprKind::kCall ||
        !stmt.expr.is_method_call() || stmt.expr.attr != "read_csv" ||
        !stmt.expr.object.is_var() ||
        !model.IsPandasModule(stmt.expr.object.var)) {
      continue;
    }
    if (stmt.expr.operands.empty() || !stmt.expr.operands[0].is_str()) {
      estimable = false;  // dynamic path: cannot consult metadata
      continue;
    }
    auto md =
        options.metastore->GetOrCompute(stmt.expr.operands[0].str_value);
    if (!md.ok()) {
      estimable = false;
      continue;
    }
    bool all_columns = false;
    std::vector<std::string> live_cols =
        liveness.LiveColumnsAfter(i, stmt.target, &all_columns);
    total += md->EstimateMemoryBytes(all_columns ? std::vector<std::string>{}
                                                 : live_cols);
  }

  choice.estimated_bytes =
      static_cast<int64_t>(total * options.working_set_factor);
  std::ostringstream why;
  if (!estimable) {
    choice.backend = exec::BackendKind::kDask;
    why << "dataset sizes not statically estimable; choosing the "
           "out-of-core backend";
  } else if (options.memory_budget == 0 ||
             choice.estimated_bytes <= options.memory_budget) {
    choice.backend = exec::BackendKind::kPandas;
    why << "estimated working set " << choice.estimated_bytes / 1000000
        << " MB fits the budget"
        << (options.memory_budget > 0
                ? " of " + std::to_string(options.memory_budget / 1000000) +
                      " MB"
                : " (unlimited)")
        << "; eager Pandas is fastest in memory";
  } else {
    choice.backend = exec::BackendKind::kDask;
    why << "estimated working set " << choice.estimated_bytes / 1000000
        << " MB exceeds the budget of "
        << options.memory_budget / 1000000
        << " MB; choosing the streaming backend";
    if (choice.order_sensitive) {
      why << " (note: the program consumes row order; order-sensitive "
             "steps will use the per-operator Pandas fallback)";
    }
  }
  choice.rationale = why.str();
  return choice;
}

}  // namespace lafp::script
