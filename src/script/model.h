#ifndef LAFP_SCRIPT_MODEL_H_
#define LAFP_SCRIPT_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "script/ir.h"

namespace lafp::script {

/// Static classification of a program variable — the front-end's type
/// model (the paper infers dataframe-ness "from the types of the Pandas
/// API calls", §3.4).
enum class VarKind : int {
  kUnknown = 0,
  kModule,       // import alias (pd, plt, ...)
  kDataFrame,
  kSeries,
  kGroupBy,      // df.groupby(keys)
  kGroupByCol,   // df.groupby(keys)[col]
  kDtAccessor,   // series.dt
  kStrAccessor,  // series.str
  kScalar,       // reductions, len(), numbers
  kStringList,   // constant list of strings (usecols, keys, ...)
  kDict,         // constant dict (rename maps, dtype maps)
};

struct VarInfo {
  VarKind kind = VarKind::kUnknown;
  bool informational = false;             // head()/info()/describe() result
  std::string module_name;                // kModule
  std::string source_var;                 // derived values: defining var
  std::string column;                     // series / groupby-col column
  std::vector<std::string> groupby_keys;  // kGroupBy / kGroupByCol
  std::vector<std::string> list_values;   // kStringList constants
  std::vector<std::string> list_vars;     // variable elements of a list
};

/// Whole-program variable model: var kinds (last definition wins — the
/// conservative note of §2.1 about Python's dynamism applies), pandas /
/// external module aliases, and the set of columns ever assigned via
/// setitem (the read-only check of §3.6).
struct ProgramModel {
  std::map<std::string, VarInfo> vars;
  std::set<std::string> pandas_aliases;    // e.g. "pd"
  std::set<std::string> external_modules;  // e.g. "plt" -> matplotlib
  std::set<std::string> assigned_columns;  // setitem targets (any frame)

  const VarInfo* Find(const std::string& var) const;
  VarKind KindOf(const std::string& var) const;
  bool IsPandasModule(const std::string& var) const {
    return pandas_aliases.count(var) > 0;
  }
  bool IsExternalModule(const std::string& var) const {
    return external_modules.count(var) > 0;
  }
};

/// Method-name tables shared by the analyses and the interpreter.
bool IsSeriesReduction(const std::string& name);  // sum/mean/min/max/...
bool IsInformational(const std::string& name);    // head/info/describe §3.1
bool IsFrameToFrameMethod(const std::string& name);
/// Methods whose receiver is a series and result is a series.
bool IsSeriesToSeriesMethod(const std::string& name);

/// One linear forward pass over the IR (structure-insensitive;
/// assignments in branches merge last-wins).
ProgramModel BuildProgramModel(const IRProgram& program);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_MODEL_H_
