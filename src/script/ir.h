#ifndef LAFP_SCRIPT_IR_H_
#define LAFP_SCRIPT_IR_H_

#include <string>
#include <utility>
#include <vector>

#include "script/ast.h"

namespace lafp::script {

/// SCIRPy — the three-address intermediate representation the static
/// analyses run on (the paper's Soot/Jimple-derived IR, §2.2). Nested
/// expressions are flattened into compiler temporaries ("$tN"); control
/// flow is labels, gotos and conditional branches, from which the CFG is
/// built.

/// An atom: a constant or a variable reference.
struct IRValue {
  enum class Kind : int { kConst, kVar };
  enum class ConstType : int { kInt, kFloat, kStr, kBool, kNone };

  Kind kind = Kind::kConst;
  ConstType ctype = ConstType::kNone;
  int64_t int_value = 0;
  double float_value = 0.0;
  std::string str_value;
  bool bool_value = false;
  std::string var;

  static IRValue Var(std::string name) {
    IRValue v;
    v.kind = Kind::kVar;
    v.var = std::move(name);
    return v;
  }
  static IRValue Int(int64_t i) {
    IRValue v;
    v.ctype = ConstType::kInt;
    v.int_value = i;
    return v;
  }
  static IRValue Float(double f) {
    IRValue v;
    v.ctype = ConstType::kFloat;
    v.float_value = f;
    return v;
  }
  static IRValue Str(std::string s) {
    IRValue v;
    v.ctype = ConstType::kStr;
    v.str_value = std::move(s);
    return v;
  }
  static IRValue Bool(bool b) {
    IRValue v;
    v.ctype = ConstType::kBool;
    v.bool_value = b;
    return v;
  }
  static IRValue None() { return IRValue(); }

  bool is_var() const { return kind == Kind::kVar; }
  bool is_str() const {
    return kind == Kind::kConst && ctype == ConstType::kStr;
  }

  std::string ToSource() const;
};

/// Flat right-hand sides: at most one operator over atoms.
enum class IRExprKind : int {
  kAtom,      // constant or variable copy
  kList,      // [a, b, ...]
  kDict,      // {k: v, ...}  (string-const keys)
  kBinOp,     // a <op> b  (also & | and or)
  kUnaryOp,   // -a, not a, ~a
  kCompare,   // a <cmp> b
  kGetAttr,   // a.name
  kGetItem,   // a[index]
  kCall,      // receiver.method(args) or global(args)
  kFString,   // f"...{a}..." with atom substitutions
};

struct IRExpr {
  IRExprKind kind = IRExprKind::kAtom;
  IRValue atom;                       // kAtom
  std::string op;                     // kBinOp/kUnaryOp/kCompare text
  std::vector<IRValue> operands;      // operator operands / list elements /
                                      // call positional args / fstring exprs
  std::vector<std::pair<std::string, IRValue>> kwargs;   // kCall
  std::vector<std::pair<IRValue, IRValue>> dict_items;   // kDict
  IRValue object;           // kGetAttr/kGetItem base; kCall receiver
  std::string attr;         // kGetAttr name; kCall method name
  std::string global_name;  // kCall: set when the callee is a bare name
                            // (print, len, plot, checksum, range, ...)
  std::vector<std::string> fstring_literals;  // kFString (operands.size()+1)

  bool is_method_call() const {
    return kind == IRExprKind::kCall && global_name.empty();
  }

  std::string ToSource() const;
};

enum class IRStmtKind : int {
  kAssign,     // target = expr
  kStoreItem,  // object[key] = value (pandas setitem)
  kExprStmt,   // expr evaluated for side effects (calls)
  kLabel,
  kGoto,
  kBranch,     // if cond goto true_label else false_label
  kImport,     // module import (kept for the rewriter/codegen)
  kNop,
};

struct IRStmt {
  IRStmtKind kind = IRStmtKind::kNop;
  int line = 0;

  std::string target;  // kAssign
  IRExpr expr;         // kAssign / kExprStmt
  IRValue object;      // kStoreItem
  IRValue key;         // kStoreItem
  IRValue value;       // kStoreItem
  std::string label;   // kLabel / kGoto target
  IRValue cond;        // kBranch condition (var)
  std::string true_label, false_label;  // kBranch
  std::string module, alias, imported_name;  // kImport
  bool is_from_import = false;

  std::string ToSource() const;
};

struct IRProgram {
  std::vector<IRStmt> stmts;
  int temp_counter = 0;

  std::string NewTemp() { return "$t" + std::to_string(temp_counter++); }

  std::string ToSource() const;
};

/// Flatten the AST into SCIRPy.
Result<IRProgram> LowerToIR(const Module& module);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_IR_H_
