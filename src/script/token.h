#ifndef LAFP_SCRIPT_TOKEN_H_
#define LAFP_SCRIPT_TOKEN_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace lafp::script {

/// Token kinds of PdScript, the mini-Python the analyzer front-end
/// consumes (DESIGN.md substitution for Python source).
enum class TokenKind : int {
  kName,
  kInt,
  kFloat,
  kString,
  kFStringStart,  // f" ... — the lexer splits f-strings into parts
  kNewline,
  kIndent,
  kDedent,
  kEndOfFile,
  // punctuation / operators
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kColon,
  kDot,
  kAssign,      // =
  kEq,          // ==
  kNe,          // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,         // &
  kPipe,        // |
  kTilde,       // ~
  // keywords
  kIf,
  kElse,
  kElif,
  kWhile,
  kFor,
  kIn,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kNone,
  kImport,
  kFrom,
  kAs,
  kPass,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;   // raw lexeme (unescaped value for strings)
  int line = 0;
  int column = 0;

  /// For f-strings: alternating literal parts and expression source
  /// fragments; fstring_parts[i] is literal when i is even.
  std::vector<std::string> fstring_parts;
};

/// Tokenize PdScript source. Indentation produces kIndent/kDedent pairs;
/// '#' starts a comment; blank lines are skipped.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_TOKEN_H_
