#include "script/codegen.h"

#include <map>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace lafp::script {

namespace {

bool IsTemp(const std::string& name) {
  return !name.empty() && name[0] == '$';
}

/// Region-based source reconstruction. The lowering emits exactly these
/// shapes, which the generator recognizes:
///   if:    branch t->Lt f->Lf ; Lt: THEN [goto Lend; Lf: ELSE; Lend:] | Lf:
///   while: Lh: COND* ; branch t->Lb f->Le ; Lb: BODY ; goto Lh ; Le:
class SourceGenerator {
 public:
  explicit SourceGenerator(const IRProgram& program) : program_(program) {}

  Result<std::string> Run() {
    LAFP_RETURN_NOT_OK(EmitRange(0, program_.stmts.size(), 0));
    return out_.str();
  }

 private:
  const IRStmt& At(size_t i) const { return program_.stmts[i]; }

  /// Index of "label:" within [from, to), or npos.
  size_t FindLabel(const std::string& label, size_t from, size_t to) const {
    for (size_t i = from; i < to; ++i) {
      if (At(i).kind == IRStmtKind::kLabel && At(i).label == label) {
        return i;
      }
    }
    return std::string::npos;
  }

  /// Index of "goto label" within [from, to), or npos.
  size_t FindGoto(const std::string& label, size_t from, size_t to) const {
    for (size_t i = from; i < to; ++i) {
      if (At(i).kind == IRStmtKind::kGoto && At(i).label == label) {
        return i;
      }
    }
    return std::string::npos;
  }

  /// Substitute recorded temp texts into a rendered source fragment.
  std::string Rendered(const IRValue& v) const {
    if (v.is_var()) {
      auto it = temp_text_.find(v.var);
      if (it != temp_text_.end()) return it->second;
    }
    return v.ToSource();
  }

  std::string RenderExpr(const IRExpr& expr) const {
    std::ostringstream os;
    switch (expr.kind) {
      case IRExprKind::kAtom:
        return Rendered(expr.atom);
      case IRExprKind::kList: {
        os << "[";
        for (size_t i = 0; i < expr.operands.size(); ++i) {
          if (i > 0) os << ", ";
          os << Rendered(expr.operands[i]);
        }
        os << "]";
        return os.str();
      }
      case IRExprKind::kDict: {
        os << "{";
        for (size_t i = 0; i < expr.dict_items.size(); ++i) {
          if (i > 0) os << ", ";
          os << Rendered(expr.dict_items[i].first) << ": "
             << Rendered(expr.dict_items[i].second);
        }
        os << "}";
        return os.str();
      }
      case IRExprKind::kBinOp:
      case IRExprKind::kCompare:
        return "(" + Rendered(expr.operands[0]) + " " + expr.op + " " +
               Rendered(expr.operands[1]) + ")";
      case IRExprKind::kUnaryOp:
        if (expr.op == "not") return "(not " + Rendered(expr.operands[0]) + ")";
        return expr.op + Rendered(expr.operands[0]);
      case IRExprKind::kGetAttr:
        return Rendered(expr.object) + "." + expr.attr;
      case IRExprKind::kGetItem:
        return Rendered(expr.object) + "[" + Rendered(expr.operands[0]) +
               "]";
      case IRExprKind::kCall: {
        if (expr.global_name.empty()) {
          os << Rendered(expr.object) << "." << expr.attr << "(";
        } else {
          os << expr.global_name << "(";
        }
        bool first = true;
        for (const auto& arg : expr.operands) {
          if (!first) os << ", ";
          first = false;
          os << Rendered(arg);
        }
        for (const auto& [name, value] : expr.kwargs) {
          if (!first) os << ", ";
          first = false;
          os << name << "=" << Rendered(value);
        }
        os << ")";
        return os.str();
      }
      case IRExprKind::kFString: {
        os << "f\"";
        for (size_t i = 0; i < expr.fstring_literals.size(); ++i) {
          os << expr.fstring_literals[i];
          if (i < expr.operands.size()) {
            os << "{" << Rendered(expr.operands[i]) << "}";
          }
        }
        os << "\"";
        return os.str();
      }
    }
    return "?";
  }

  void EmitLine(int indent, const std::string& text) {
    out_ << std::string(indent * 4, ' ') << text << "\n";
  }

  Status EmitRange(size_t begin, size_t end, int indent) {
    size_t i = begin;
    while (i < end) {
      const IRStmt& stmt = At(i);
      switch (stmt.kind) {
        case IRStmtKind::kImport:
          if (stmt.is_from_import) {
            EmitLine(indent,
                     "from " + stmt.module + " import " +
                         stmt.imported_name);
          } else {
            EmitLine(indent,
                     "import " + stmt.module +
                         (stmt.alias.empty() ? "" : " as " + stmt.alias));
          }
          ++i;
          break;
        case IRStmtKind::kNop:
          ++i;
          break;
        case IRStmtKind::kAssign: {
          std::string rhs = RenderExpr(stmt.expr);
          if (IsTemp(stmt.target)) {
            temp_text_[stmt.target] = rhs;  // inlined at use site
          } else {
            EmitLine(indent, stmt.target + " = " + rhs);
          }
          ++i;
          break;
        }
        case IRStmtKind::kStoreItem:
          EmitLine(indent, Rendered(stmt.object) + "[" +
                               Rendered(stmt.key) +
                               "] = " + Rendered(stmt.value));
          ++i;
          break;
        case IRStmtKind::kExprStmt:
          EmitLine(indent, RenderExpr(stmt.expr));
          ++i;
          break;
        case IRStmtKind::kLabel: {
          // A label beginning a while loop has a matching back-goto.
          size_t back = FindGoto(stmt.label, i + 1, end);
          if (back == std::string::npos) {
            ++i;  // join label of an if; nothing to emit
            break;
          }
          LAFP_RETURN_NOT_OK(EmitWhile(i, back, end, indent, &i));
          break;
        }
        case IRStmtKind::kBranch:
          LAFP_RETURN_NOT_OK(EmitIf(i, end, indent, &i));
          break;
        case IRStmtKind::kGoto:
          return Status::ExecutionError(
              "unstructured goto; cannot regenerate source");
      }
    }
    return Status::OK();
  }

  Status EmitWhile(size_t head_label, size_t back_goto, size_t end,
                   int indent, size_t* next) {
    (void)end;
    // Between the head label and the branch: condition temp chain.
    size_t branch = head_label + 1;
    while (branch < back_goto && At(branch).kind != IRStmtKind::kBranch) {
      if (At(branch).kind == IRStmtKind::kAssign &&
          IsTemp(At(branch).target)) {
        temp_text_[At(branch).target] = RenderExpr(At(branch).expr);
      } else {
        return Status::ExecutionError(
            "unsupported loop condition structure");
      }
      ++branch;
    }
    if (branch >= back_goto) {
      return Status::ExecutionError("loop without branch");
    }
    const IRStmt& br = At(branch);
    EmitLine(indent, "while " + Rendered(br.cond) + ":");
    // Body: after "Lbody:" up to the back goto.
    size_t body_begin = branch + 1;
    if (body_begin < back_goto &&
        At(body_begin).kind == IRStmtKind::kLabel) {
      ++body_begin;
    }
    LAFP_RETURN_NOT_OK(EmitRange(body_begin, back_goto, indent + 1));
    // Skip past the end label.
    size_t after = back_goto + 1;
    if (after < program_.stmts.size() &&
        At(after).kind == IRStmtKind::kLabel &&
        At(after).label == br.false_label) {
      ++after;
    }
    *next = after;
    return Status::OK();
  }

  Status EmitIf(size_t branch, size_t end, int indent, size_t* next) {
    const IRStmt& br = At(branch);
    size_t then_label = branch + 1;
    if (then_label >= end || At(then_label).kind != IRStmtKind::kLabel ||
        At(then_label).label != br.true_label) {
      return Status::ExecutionError("unstructured branch");
    }
    size_t false_pos = FindLabel(br.false_label, then_label + 1, end);
    if (false_pos == std::string::npos) {
      return Status::ExecutionError("missing branch join label");
    }
    EmitLine(indent, "if " + Rendered(br.cond) + ":");
    // Does the then-arm end with "goto Lend" (if-else) or fall through
    // (if-then)?
    bool has_else = false_pos > then_label + 1 &&
                    At(false_pos - 1).kind == IRStmtKind::kGoto;
    if (!has_else) {
      LAFP_RETURN_NOT_OK(EmitRange(then_label + 1, false_pos, indent + 1));
      *next = false_pos + 1;  // skip the join label
      return Status::OK();
    }
    const std::string& end_label = At(false_pos - 1).label;
    LAFP_RETURN_NOT_OK(
        EmitRange(then_label + 1, false_pos - 1, indent + 1));
    size_t end_pos = FindLabel(end_label, false_pos + 1, end);
    if (end_pos == std::string::npos) {
      return Status::ExecutionError("missing if-else end label");
    }
    EmitLine(indent, "else:");
    LAFP_RETURN_NOT_OK(EmitRange(false_pos + 1, end_pos, indent + 1));
    *next = end_pos + 1;
    return Status::OK();
  }

  const IRProgram& program_;
  std::ostringstream out_;
  std::map<std::string, std::string> temp_text_;
};

}  // namespace

Result<std::string> GenerateSource(const IRProgram& program) {
  return SourceGenerator(program).Run();
}

}  // namespace lafp::script
