#include <sstream>

#include "script/ast.h"

namespace lafp::script {

namespace {

std::string QuoteString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

std::string FormatFloat(double v) {
  std::ostringstream os;
  os << v;
  std::string s = os.str();
  if (s.find('.') == std::string::npos &&
      s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos &&
      s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

}  // namespace

std::string Expr::ToSource() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kName:
      return name;
    case ExprKind::kIntLit:
      return std::to_string(int_value);
    case ExprKind::kFloatLit:
      return FormatFloat(float_value);
    case ExprKind::kStringLit:
      return QuoteString(str_value);
    case ExprKind::kBoolLit:
      return bool_value ? "True" : "False";
    case ExprKind::kNoneLit:
      return "None";
    case ExprKind::kFString: {
      os << "f\"";
      for (size_t i = 0; i < fstring_literals.size(); ++i) {
        os << fstring_literals[i];
        if (i < elements.size()) os << "{" << elements[i]->ToSource() << "}";
      }
      os << "\"";
      return os.str();
    }
    case ExprKind::kList: {
      os << "[";
      for (size_t i = 0; i < elements.size(); ++i) {
        if (i > 0) os << ", ";
        os << elements[i]->ToSource();
      }
      os << "]";
      return os.str();
    }
    case ExprKind::kDict: {
      os << "{";
      for (size_t i = 0; i < dict_keys.size(); ++i) {
        if (i > 0) os << ", ";
        os << dict_keys[i]->ToSource() << ": " << dict_values[i]->ToSource();
      }
      os << "}";
      return os.str();
    }
    case ExprKind::kAttribute:
      return lhs->ToSource() + "." + name;
    case ExprKind::kSubscript:
      return lhs->ToSource() + "[" + rhs->ToSource() + "]";
    case ExprKind::kCall: {
      os << lhs->ToSource() << "(";
      bool first = true;
      for (const auto& arg : elements) {
        if (!first) os << ", ";
        first = false;
        os << arg->ToSource();
      }
      for (const auto& kw : kwargs) {
        if (!first) os << ", ";
        first = false;
        os << kw.name << "=" << kw.value->ToSource();
      }
      os << ")";
      return os.str();
    }
    case ExprKind::kBinOp: {
      std::string op = name;
      return "(" + lhs->ToSource() + " " + op + " " + rhs->ToSource() + ")";
    }
    case ExprKind::kUnaryOp:
      if (name == "not") return "(not " + lhs->ToSource() + ")";
      return "(" + name + lhs->ToSource() + ")";
    case ExprKind::kCompare:
      return "(" + lhs->ToSource() + " " + name + " " + rhs->ToSource() +
             ")";
  }
  return "?";
}

std::string Stmt::ToSource(int indent) const {
  std::string pad(indent * 4, ' ');
  std::ostringstream os;
  switch (kind) {
    case StmtKind::kAssign:
      os << pad << target->ToSource() << " = " << value->ToSource() << "\n";
      break;
    case StmtKind::kExpr:
      os << pad << value->ToSource() << "\n";
      break;
    case StmtKind::kIf: {
      os << pad << "if " << value->ToSource() << ":\n";
      for (const auto& s : body) os << s->ToSource(indent + 1);
      if (!else_body.empty()) {
        os << pad << "else:\n";
        for (const auto& s : else_body) os << s->ToSource(indent + 1);
      }
      break;
    }
    case StmtKind::kWhile: {
      os << pad << "while " << value->ToSource() << ":\n";
      for (const auto& s : body) os << s->ToSource(indent + 1);
      break;
    }
    case StmtKind::kFor: {
      os << pad << "for " << loop_var << " in " << value->ToSource()
         << ":\n";
      for (const auto& s : body) os << s->ToSource(indent + 1);
      break;
    }
    case StmtKind::kImport:
      os << pad << "import " << module;
      if (!alias.empty()) os << " as " << alias;
      os << "\n";
      break;
    case StmtKind::kFromImport:
      os << pad << "from " << module << " import " << imported_name << "\n";
      break;
    case StmtKind::kPass:
      os << pad << "pass\n";
      break;
  }
  return os.str();
}

std::string Module::ToSource() const {
  std::string out;
  for (const auto& stmt : stmts) out += stmt->ToSource();
  return out;
}

}  // namespace lafp::script
