#ifndef LAFP_SCRIPT_CFG_H_
#define LAFP_SCRIPT_CFG_H_

#include <string>
#include <vector>

#include "script/ir.h"

namespace lafp::script {

/// A basic block: a maximal straight-line run of IR statements (§2.2).
struct BasicBlock {
  int id = 0;
  std::vector<size_t> stmts;  // indices into IRProgram::stmts
  std::vector<int> succs;
  std::vector<int> preds;
};

/// Control-flow graph over an IRProgram. Block 0 is the entry; a virtual
/// exit is represented by an empty block appended at the end.
struct Cfg {
  const IRProgram* program = nullptr;
  std::vector<BasicBlock> blocks;
  int entry = 0;
  int exit = 0;

  std::string ToDot() const;
};

Result<Cfg> BuildCfg(const IRProgram& program);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_CFG_H_
