#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"
#include "script/ast.h"

namespace lafp::script {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Module> ParseModule() {
    Module module;
    while (!Check(TokenKind::kEndOfFile)) {
      LAFP_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      if (stmt != nullptr) module.stmts.push_back(std::move(stmt));
    }
    return module;
  }

  Result<ExprPtr> ParseSingleExpression() {
    LAFP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    return e;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }
  const Token& Advance() { return tokens_[pos_++]; }
  Status Expect(TokenKind kind) {
    if (!Check(kind)) {
      return Err(std::string("expected '") + TokenKindName(kind) +
                 "', got '" + TokenKindName(Peek().kind) + "'");
    }
    ++pos_;
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(Peek().line) + ": " +
                              msg);
  }

  ExprPtr NewExpr(ExprKind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = Peek().line;
    return e;
  }

  Result<StmtPtr> ParseStatement() {
    while (Match(TokenKind::kNewline)) {
    }
    if (Check(TokenKind::kEndOfFile)) return StmtPtr();
    if (Check(TokenKind::kImport) || Check(TokenKind::kFrom)) {
      return ParseImport();
    }
    if (Check(TokenKind::kIf)) return ParseIf();
    if (Check(TokenKind::kWhile)) return ParseWhile();
    if (Check(TokenKind::kFor)) return ParseFor();
    if (Match(TokenKind::kPass)) {
      LAFP_RETURN_NOT_OK(Expect(TokenKind::kNewline));
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kPass;
      return stmt;
    }
    // assignment or expression statement
    LAFP_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
    auto stmt = std::make_unique<Stmt>();
    stmt->line = first->line;
    if (Match(TokenKind::kAssign)) {
      if (first->kind != ExprKind::kName &&
          first->kind != ExprKind::kSubscript &&
          first->kind != ExprKind::kAttribute) {
        return Err("invalid assignment target");
      }
      LAFP_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      stmt->kind = StmtKind::kAssign;
      stmt->target = std::move(first);
      stmt->value = std::move(value);
    } else {
      stmt->kind = StmtKind::kExpr;
      stmt->value = std::move(first);
    }
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kNewline));
    return stmt;
  }

  Result<StmtPtr> ParseImport() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = Peek().line;
    if (Match(TokenKind::kFrom)) {
      stmt->kind = StmtKind::kFromImport;
      LAFP_ASSIGN_OR_RETURN(stmt->module, ParseDottedName());
      if (!Check(TokenKind::kImport)) {
        return Err("expected 'import' in from-import");
      }
      Advance();
      if (!Check(TokenKind::kName)) return Err("expected imported name");
      stmt->imported_name = Advance().text;
    } else {
      LAFP_RETURN_NOT_OK(Expect(TokenKind::kImport));
      stmt->kind = StmtKind::kImport;
      LAFP_ASSIGN_OR_RETURN(stmt->module, ParseDottedName());
      if (Match(TokenKind::kAs)) {
        if (!Check(TokenKind::kName)) return Err("expected alias name");
        stmt->alias = Advance().text;
      }
    }
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kNewline));
    return stmt;
  }

  Result<std::string> ParseDottedName() {
    if (!Check(TokenKind::kName)) return Err("expected module name");
    std::string name = Advance().text;
    while (Match(TokenKind::kDot)) {
      if (!Check(TokenKind::kName)) return Err("expected name after '.'");
      name += "." + Advance().text;
    }
    return name;
  }

  Result<StmtPtr> ParseIf() {
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kIf));
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->line = Peek().line;
    LAFP_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kColon));
    LAFP_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    if (Check(TokenKind::kElif)) {
      // elif sugar: else { if ... }
      tokens_[pos_].kind = TokenKind::kIf;
      LAFP_ASSIGN_OR_RETURN(StmtPtr nested, ParseIf());
      stmt->else_body.push_back(std::move(nested));
    } else if (Match(TokenKind::kElse)) {
      LAFP_RETURN_NOT_OK(Expect(TokenKind::kColon));
      LAFP_ASSIGN_OR_RETURN(stmt->else_body, ParseBlock());
    }
    return stmt;
  }

  Result<StmtPtr> ParseWhile() {
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kWhile));
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kWhile;
    stmt->line = Peek().line;
    LAFP_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kColon));
    LAFP_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    return stmt;
  }

  Result<StmtPtr> ParseFor() {
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kFor));
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFor;
    stmt->line = Peek().line;
    if (!Check(TokenKind::kName)) return Err("expected loop variable");
    stmt->loop_var = Advance().text;
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kIn));
    LAFP_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kColon));
    LAFP_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    return stmt;
  }

  Result<std::vector<StmtPtr>> ParseBlock() {
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kNewline));
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kIndent));
    std::vector<StmtPtr> body;
    while (!Check(TokenKind::kDedent) && !Check(TokenKind::kEndOfFile)) {
      LAFP_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      if (stmt != nullptr) body.push_back(std::move(stmt));
    }
    LAFP_RETURN_NOT_OK(Expect(TokenKind::kDedent));
    if (body.empty()) return Err("empty block");
    return body;
  }

  // Expression precedence: or < and < not < comparison < |& < +- < */% <
  // unary < postfix.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    LAFP_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Check(TokenKind::kOr)) {
      Advance();
      LAFP_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBin("or", std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    LAFP_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Check(TokenKind::kAnd)) {
      Advance();
      LAFP_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBin("and", std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (Match(TokenKind::kNot)) {
      LAFP_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      auto e = NewExpr(ExprKind::kUnaryOp);
      e->name = "not";
      e->lhs = std::move(operand);
      return e;
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    LAFP_ASSIGN_OR_RETURN(ExprPtr left, ParseBitwise());
    static const std::pair<TokenKind, const char*> kOps[] = {
        {TokenKind::kEq, "=="}, {TokenKind::kNe, "!="},
        {TokenKind::kLt, "<"},  {TokenKind::kLe, "<="},
        {TokenKind::kGt, ">"},  {TokenKind::kGe, ">="}};
    for (const auto& [kind, text] : kOps) {
      if (Check(kind)) {
        Advance();
        LAFP_ASSIGN_OR_RETURN(ExprPtr right, ParseBitwise());
        auto e = NewExpr(ExprKind::kCompare);
        e->name = text;
        e->lhs = std::move(left);
        e->rhs = std::move(right);
        return ExprPtr(std::move(e));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseBitwise() {
    LAFP_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    while (Check(TokenKind::kAmp) || Check(TokenKind::kPipe)) {
      std::string op = Advance().text;
      LAFP_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      left = MakeBin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    LAFP_ASSIGN_OR_RETURN(ExprPtr left, ParseTerm());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      std::string op = Advance().text;
      LAFP_ASSIGN_OR_RETURN(ExprPtr right, ParseTerm());
      left = MakeBin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseTerm() {
    LAFP_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
           Check(TokenKind::kPercent)) {
      std::string op = Advance().text;
      LAFP_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBin(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Check(TokenKind::kMinus) || Check(TokenKind::kTilde)) {
      std::string op = Advance().text;
      LAFP_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      // Constant-fold negative number literals.
      if (op == "-" && operand->kind == ExprKind::kIntLit) {
        operand->int_value = -operand->int_value;
        return operand;
      }
      if (op == "-" && operand->kind == ExprKind::kFloatLit) {
        operand->float_value = -operand->float_value;
        return operand;
      }
      auto e = NewExpr(ExprKind::kUnaryOp);
      e->name = op;
      e->lhs = std::move(operand);
      return ExprPtr(std::move(e));
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    LAFP_ASSIGN_OR_RETURN(ExprPtr expr, ParseAtom());
    while (true) {
      if (Match(TokenKind::kDot)) {
        if (!Check(TokenKind::kName)) return Err("expected attribute name");
        auto e = NewExpr(ExprKind::kAttribute);
        e->name = Advance().text;
        e->lhs = std::move(expr);
        expr = std::move(e);
        continue;
      }
      if (Check(TokenKind::kLParen)) {
        Advance();
        auto e = NewExpr(ExprKind::kCall);
        e->lhs = std::move(expr);
        while (!Check(TokenKind::kRParen)) {
          // keyword argument?
          if (Check(TokenKind::kName) &&
              Peek(1).kind == TokenKind::kAssign) {
            Kwarg kw;
            kw.name = Advance().text;
            Advance();  // '='
            LAFP_ASSIGN_OR_RETURN(kw.value, ParseExpr());
            e->kwargs.push_back(std::move(kw));
          } else {
            LAFP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            e->elements.push_back(std::move(arg));
          }
          if (!Match(TokenKind::kComma)) break;
        }
        LAFP_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        expr = std::move(e);
        continue;
      }
      if (Check(TokenKind::kLBracket)) {
        Advance();
        auto e = NewExpr(ExprKind::kSubscript);
        e->lhs = std::move(expr);
        LAFP_ASSIGN_OR_RETURN(e->rhs, ParseExpr());
        LAFP_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
        expr = std::move(e);
        continue;
      }
      break;
    }
    return expr;
  }

  Result<ExprPtr> ParseAtom() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kName: {
        auto e = NewExpr(ExprKind::kName);
        e->name = Advance().text;
        return ExprPtr(std::move(e));
      }
      case TokenKind::kInt: {
        auto e = NewExpr(ExprKind::kIntLit);
        auto v = ParseInt64(Advance().text);
        if (!v.has_value()) return Err("bad integer literal");
        e->int_value = *v;
        return ExprPtr(std::move(e));
      }
      case TokenKind::kFloat: {
        auto e = NewExpr(ExprKind::kFloatLit);
        auto v = ParseDouble(Advance().text);
        if (!v.has_value()) return Err("bad float literal");
        e->float_value = *v;
        return ExprPtr(std::move(e));
      }
      case TokenKind::kString: {
        auto e = NewExpr(ExprKind::kStringLit);
        e->str_value = Advance().text;
        return ExprPtr(std::move(e));
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        auto e = NewExpr(ExprKind::kBoolLit);
        e->bool_value = tok.kind == TokenKind::kTrue;
        Advance();
        return ExprPtr(std::move(e));
      }
      case TokenKind::kNone: {
        Advance();
        return ExprPtr(NewExpr(ExprKind::kNoneLit));
      }
      case TokenKind::kFStringStart: {
        auto e = NewExpr(ExprKind::kFString);
        const Token& f = Advance();
        for (size_t i = 0; i < f.fstring_parts.size(); ++i) {
          if (i % 2 == 0) {
            e->fstring_literals.push_back(f.fstring_parts[i]);
          } else {
            LAFP_ASSIGN_OR_RETURN(ExprPtr embedded,
                                  ParseEmbedded(f.fstring_parts[i]));
            e->elements.push_back(std::move(embedded));
          }
        }
        if (e->fstring_literals.size() != e->elements.size() + 1) {
          return Err("malformed f-string");
        }
        return ExprPtr(std::move(e));
      }
      case TokenKind::kLBracket: {
        Advance();
        auto e = NewExpr(ExprKind::kList);
        while (!Check(TokenKind::kRBracket)) {
          LAFP_ASSIGN_OR_RETURN(ExprPtr elem, ParseExpr());
          e->elements.push_back(std::move(elem));
          if (!Match(TokenKind::kComma)) break;
        }
        LAFP_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
        return ExprPtr(std::move(e));
      }
      case TokenKind::kLBrace: {
        Advance();
        auto e = NewExpr(ExprKind::kDict);
        while (!Check(TokenKind::kRBrace)) {
          LAFP_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
          LAFP_RETURN_NOT_OK(Expect(TokenKind::kColon));
          LAFP_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
          e->dict_keys.push_back(std::move(key));
          e->dict_values.push_back(std::move(value));
          if (!Match(TokenKind::kComma)) break;
        }
        LAFP_RETURN_NOT_OK(Expect(TokenKind::kRBrace));
        return ExprPtr(std::move(e));
      }
      case TokenKind::kLParen: {
        Advance();
        LAFP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        LAFP_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        return inner;
      }
      default:
        return Err(std::string("unexpected token '") +
                   TokenKindName(tok.kind) + "'");
    }
  }

  Result<ExprPtr> ParseEmbedded(const std::string& fragment) {
    LAFP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(fragment));
    Parser inner(std::move(tokens));
    return inner.ParseSingleExpression();
  }

  ExprPtr MakeBin(const std::string& op, ExprPtr left, ExprPtr right) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinOp;
    e->line = left->line;
    e->name = op;
    e->lhs = std::move(left);
    e->rhs = std::move(right);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Module> Parse(const std::string& source) {
  LAFP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseModule();
}

Result<ExprPtr> ParseExpression(const std::string& source) {
  LAFP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.ParseSingleExpression();
}

}  // namespace lafp::script
