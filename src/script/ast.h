#ifndef LAFP_SCRIPT_AST_H_
#define LAFP_SCRIPT_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "script/token.h"

namespace lafp::script {

// ---------------- Expressions ----------------

enum class ExprKind : int {
  kName,
  kIntLit,
  kFloatLit,
  kStringLit,
  kBoolLit,
  kNoneLit,
  kFString,    // parts: literals and embedded expressions
  kList,
  kDict,
  kAttribute,  // value.attr
  kSubscript,  // value[index]
  kCall,       // func(args, kwargs)
  kBinOp,      // + - * / % & | and or
  kUnaryOp,    // - not ~
  kCompare,    // == != < <= > >=
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Kwarg {
  std::string name;
  ExprPtr value;
};

/// One AST expression node. A single struct with a kind tag keeps the
/// traversals (lowering, codegen) simple.
struct Expr {
  ExprKind kind;
  int line = 0;

  // kName / kAttribute(attr) / kBinOp,kUnaryOp,kCompare(operator text)
  std::string name;
  // kIntLit / kFloatLit / kStringLit / kBoolLit literal payloads
  int64_t int_value = 0;
  double float_value = 0.0;
  std::string str_value;
  bool bool_value = false;

  ExprPtr lhs;  // kBinOp/kCompare left; kAttribute/kSubscript base;
                // kUnaryOp operand; kCall callee
  ExprPtr rhs;  // kBinOp/kCompare right; kSubscript index
  std::vector<ExprPtr> elements;   // kList; kCall positional args;
                                   // kFString embedded exprs
  std::vector<std::string> fstring_literals;  // kFString literal parts
                                              // (size == elements.size()+1)
  std::vector<ExprPtr> dict_keys;    // kDict
  std::vector<ExprPtr> dict_values;  // kDict
  std::vector<Kwarg> kwargs;         // kCall keyword arguments

  /// Render back to source (used by codegen and error messages).
  std::string ToSource() const;
};

// ---------------- Statements ----------------

enum class StmtKind : int {
  kAssign,    // target = value (target: Name or Subscript)
  kExpr,      // bare expression (calls)
  kIf,
  kWhile,
  kFor,       // for NAME in <iterable>: (range(...) or a list)
  kImport,    // import module [as alias]
  kFromImport,  // from module import name
  kPass,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr target;  // kAssign
  ExprPtr value;   // kAssign value; kExpr expression; kIf/kWhile condition;
                   // kFor iterable
  std::string loop_var;  // kFor
  std::vector<StmtPtr> body;      // kIf then / kWhile body
  std::vector<StmtPtr> else_body; // kIf else
  std::string module;             // kImport / kFromImport
  std::string alias;              // kImport `as`
  std::string imported_name;      // kFromImport

  std::string ToSource(int indent = 0) const;
};

struct Module {
  std::vector<StmtPtr> stmts;

  std::string ToSource() const;
};

/// Parse PdScript source into an AST.
Result<Module> Parse(const std::string& source);

/// Parse a single expression (used for f-string embedded fragments).
Result<ExprPtr> ParseExpression(const std::string& source);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_AST_H_
