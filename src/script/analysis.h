#ifndef LAFP_SCRIPT_ANALYSIS_H_
#define LAFP_SCRIPT_ANALYSIS_H_

#include <set>
#include <string>
#include <vector>

#include "script/cfg.h"
#include "script/model.h"

namespace lafp::script {

/// Fact domain of the combined liveness analyses (§3.1, §3.5):
///   "v"    — variable v is live (classic LVA)
///   "v.c"  — column c of dataframe-ish v is live (LAA)
///   "v.*"  — all columns of v are live
using FactSet = std::set<std::string>;

inline std::string PlainFact(const std::string& var) { return var; }
inline std::string AttrFact(const std::string& var, const std::string& col) {
  return var + "." + col;
}
inline std::string AllAttrsFact(const std::string& var) {
  return var + ".*";
}

/// Results of the backward liveness dataflow over the CFG: live facts
/// immediately AFTER each IR statement (Out_n of the paper's equations)
/// and immediately before (In_n).
struct LivenessResult {
  std::vector<FactSet> out;  // indexed by statement
  std::vector<FactSet> in;

  bool IsLiveAfter(size_t stmt, const std::string& fact) const {
    return out[stmt].count(fact) > 0;
  }

  /// Live columns of `var` right after `stmt`; `all` set when "var.*" is
  /// live (no pruning possible).
  std::vector<std::string> LiveColumnsAfter(size_t stmt,
                                            const std::string& var,
                                            bool* all) const;
};

/// Run the combined Live Variable / Live Attribute analysis (the paper's
/// LVA+LAA) to a fixpoint.
Result<LivenessResult> RunLivenessAnalysis(const Cfg& cfg,
                                           const ProgramModel& model);

/// Live DataFrame Analysis (§3.5): dataframe-kind variables live after
/// `stmt`, derived from the liveness result.
std::vector<std::string> LiveDataFramesAfter(const LivenessResult& liveness,
                                             const ProgramModel& model,
                                             size_t stmt);

/// Forward must-analysis: variables definitely assigned before each
/// statement executes (intersection over predecessors). The rewriter uses
/// it to keep live_df lists free of maybe-undefined names (a liveness
/// fact is a *may*-use and can precede the definition on some paths).
Result<std::vector<FactSet>> DefinitelyAssignedBefore(const Cfg& cfg);

}  // namespace lafp::script

#endif  // LAFP_SCRIPT_ANALYSIS_H_
