#include "script/interpreter.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "dataframe/arith_semantics.h"

namespace lafp::script {

namespace {

using df::AggFunc;
using df::ArithOp;
using df::CompareOp;
using df::Scalar;
using lazy::FatDataFrame;
using lazy::LazyScalar;
using lazy::Session;

Result<CompareOp> CompareOpFromText(const std::string& op) {
  if (op == "==") return CompareOp::kEq;
  if (op == "!=") return CompareOp::kNe;
  if (op == "<") return CompareOp::kLt;
  if (op == "<=") return CompareOp::kLe;
  if (op == ">") return CompareOp::kGt;
  if (op == ">=") return CompareOp::kGe;
  return Status::Invalid("bad compare op: " + op);
}

Result<ArithOp> ArithOpFromText(const std::string& op) {
  if (op == "+") return ArithOp::kAdd;
  if (op == "-") return ArithOp::kSub;
  if (op == "*") return ArithOp::kMul;
  if (op == "/") return ArithOp::kDiv;
  if (op == "%") return ArithOp::kMod;
  return Status::Invalid("bad arithmetic op: " + op);
}

class Interpreter {
 public:
  Interpreter(const IRProgram& program, const ProgramModel& model,
              Session* session, InterpreterStats* stats)
      : program_(program), model_(model), session_(session), stats_(stats) {}

  Status Run() {
    // Label resolution.
    for (size_t i = 0; i < program_.stmts.size(); ++i) {
      if (program_.stmts[i].kind == IRStmtKind::kLabel) {
        labels_[program_.stmts[i].label] = i;
      }
    }
    size_t pc = 0;
    int64_t executed = 0;
    while (pc < program_.stmts.size()) {
      const IRStmt& stmt = program_.stmts[pc];
      if (++executed > 2'000'000) {
        return Status::ExecutionError("statement budget exhausted (loop?)");
      }
      if (stats_ != nullptr) ++stats_->statements_executed;
      switch (stmt.kind) {
        case IRStmtKind::kLabel:
        case IRStmtKind::kNop:
        case IRStmtKind::kImport:
          ++pc;
          break;
        case IRStmtKind::kGoto: {
          auto it = labels_.find(stmt.label);
          if (it == labels_.end()) {
            return Status::ExecutionError("unknown label " + stmt.label);
          }
          pc = it->second;
          break;
        }
        case IRStmtKind::kBranch: {
          LAFP_ASSIGN_OR_RETURN(Value cond, Load(stmt.cond));
          LAFP_ASSIGN_OR_RETURN(bool truth, Truthy(cond));
          auto it = labels_.find(truth ? stmt.true_label
                                       : stmt.false_label);
          if (it == labels_.end()) {
            return Status::ExecutionError("unknown branch label");
          }
          pc = it->second;
          break;
        }
        case IRStmtKind::kAssign: {
          LAFP_ASSIGN_OR_RETURN(Value v, Eval(stmt.expr));
          env_[stmt.target] = std::move(v);
          ++pc;
          break;
        }
        case IRStmtKind::kExprStmt: {
          LAFP_ASSIGN_OR_RETURN(Value v, Eval(stmt.expr));
          (void)v;
          ++pc;
          break;
        }
        case IRStmtKind::kStoreItem: {
          LAFP_RETURN_NOT_OK(ExecStoreItem(stmt));
          ++pc;
          break;
        }
      }
    }
    return Status::OK();
  }

 private:
  Result<Value> Load(const IRValue& v) {
    if (v.is_var()) {
      auto it = env_.find(v.var);
      if (it == env_.end()) {
        // Imported module aliases resolve through the model.
        const VarInfo* info = model_.Find(v.var);
        if (info != nullptr && info->kind == VarKind::kModule) {
          Value out;
          out.kind = Value::Kind::kModule;
          out.s = v.var;
          return out;
        }
        return Status::ExecutionError("undefined variable '" + v.var + "'");
      }
      return it->second;
    }
    switch (v.ctype) {
      case IRValue::ConstType::kInt:
        return Value::Int(v.int_value);
      case IRValue::ConstType::kFloat:
        return Value::Float(v.float_value);
      case IRValue::ConstType::kStr:
        return Value::Str(v.str_value);
      case IRValue::ConstType::kBool:
        return Value::Bool(v.bool_value);
      case IRValue::ConstType::kNone:
        return Value::None();
    }
    return Value::None();
  }

  Result<bool> Truthy(const Value& v) {
    switch (v.kind) {
      case Value::Kind::kBool:
        return v.b;
      case Value::Kind::kInt:
        return v.i != 0;
      case Value::Kind::kFloat:
        return v.f != 0.0;
      case Value::Kind::kStr:
        return !v.s.empty();
      case Value::Kind::kNone:
        return false;
      case Value::Kind::kLazyScalar: {
        LAFP_ASSIGN_OR_RETURN(Scalar s, v.lazy_scalar.Value());
        if (s.is_null()) return false;
        LAFP_ASSIGN_OR_RETURN(double d, s.AsDouble());
        return d != 0.0;
      }
      default:
        return Status::TypeError("value has no truthiness");
    }
  }

  /// Convert a native value to a kernel Scalar.
  Result<Scalar> ToScalar(const Value& v) {
    switch (v.kind) {
      case Value::Kind::kInt:
        return Scalar::Int(v.i);
      case Value::Kind::kFloat:
        return Scalar::Double(v.f);
      case Value::Kind::kBool:
        return Scalar::Bool(v.b);
      case Value::Kind::kStr:
        return Scalar::String(v.s);
      case Value::Kind::kNone:
        return Scalar::Null();
      case Value::Kind::kLazyScalar: {
        return v.lazy_scalar.Value();
      }
      default:
        return Status::TypeError("expected a scalar value");
    }
  }

  Result<std::vector<std::string>> ToStringList(const Value& v) {
    if (v.kind == Value::Kind::kStr) return std::vector<std::string>{v.s};
    if (v.kind != Value::Kind::kList) {
      return Status::TypeError("expected a list of strings");
    }
    std::vector<std::string> out;
    for (const auto& elem : v.list) {
      if (elem.kind != Value::Kind::kStr) {
        return Status::TypeError("expected string list elements");
      }
      out.push_back(elem.s);
    }
    return out;
  }

  Result<Value> Eval(const IRExpr& expr) {
    switch (expr.kind) {
      case IRExprKind::kAtom:
        return Load(expr.atom);
      case IRExprKind::kList: {
        Value out;
        out.kind = Value::Kind::kList;
        for (const auto& v : expr.operands) {
          LAFP_ASSIGN_OR_RETURN(Value elem, Load(v));
          out.list.push_back(std::move(elem));
        }
        return out;
      }
      case IRExprKind::kDict: {
        Value out;
        out.kind = Value::Kind::kDict;
        for (const auto& [k, v] : expr.dict_items) {
          LAFP_ASSIGN_OR_RETURN(Value key, Load(k));
          if (key.kind != Value::Kind::kStr) {
            return Status::TypeError("dict keys must be strings");
          }
          LAFP_ASSIGN_OR_RETURN(Value value, Load(v));
          out.dict[key.s] = std::move(value);
        }
        return out;
      }
      case IRExprKind::kFString: {
        Value out;
        out.kind = Value::Kind::kFormatted;
        out.literals = expr.fstring_literals;
        for (const auto& v : expr.operands) {
          LAFP_ASSIGN_OR_RETURN(Value part, Load(v));
          out.parts.push_back(std::move(part));
        }
        return out;
      }
      case IRExprKind::kBinOp:
        return EvalBinOp(expr);
      case IRExprKind::kCompare:
        return EvalCompare(expr);
      case IRExprKind::kUnaryOp:
        return EvalUnary(expr);
      case IRExprKind::kGetAttr:
        return EvalGetAttr(expr);
      case IRExprKind::kGetItem:
        return EvalGetItem(expr);
      case IRExprKind::kCall:
        return EvalCall(expr);
    }
    return Status::ExecutionError("bad expression");
  }

  Result<Value> EvalBinOp(const IRExpr& expr) {
    LAFP_ASSIGN_OR_RETURN(Value lhs, Load(expr.operands[0]));
    LAFP_ASSIGN_OR_RETURN(Value rhs, Load(expr.operands[1]));
    const std::string& op = expr.op;
    // Boolean mask combinators.
    if (op == "&" || op == "and") {
      if (lhs.kind == Value::Kind::kFrame &&
          rhs.kind == Value::Kind::kFrame) {
        LAFP_ASSIGN_OR_RETURN(FatDataFrame out, lhs.frame.And(rhs.frame));
        return Value::Frame(std::move(out));
      }
      LAFP_ASSIGN_OR_RETURN(bool l, Truthy(lhs));
      if (!l) return Value::Bool(false);
      LAFP_ASSIGN_OR_RETURN(bool r, Truthy(rhs));
      return Value::Bool(r);
    }
    if (op == "|" || op == "or") {
      if (lhs.kind == Value::Kind::kFrame &&
          rhs.kind == Value::Kind::kFrame) {
        LAFP_ASSIGN_OR_RETURN(FatDataFrame out, lhs.frame.Or(rhs.frame));
        return Value::Frame(std::move(out));
      }
      LAFP_ASSIGN_OR_RETURN(bool l, Truthy(lhs));
      if (l) return Value::Bool(true);
      LAFP_ASSIGN_OR_RETURN(bool r, Truthy(rhs));
      return Value::Bool(r);
    }
    LAFP_ASSIGN_OR_RETURN(ArithOp aop, ArithOpFromText(op));
    // Frame-involved arithmetic stays lazy.
    if (lhs.kind == Value::Kind::kFrame || rhs.kind == Value::Kind::kFrame) {
      if (lhs.kind == Value::Kind::kFrame &&
          rhs.kind == Value::Kind::kFrame) {
        LAFP_ASSIGN_OR_RETURN(FatDataFrame out,
                              lhs.frame.ArithCol(aop, rhs.frame));
        return Value::Frame(std::move(out));
      }
      if (lhs.kind == Value::Kind::kFrame) {
        if (rhs.kind == Value::Kind::kLazyScalar) {
          LAFP_ASSIGN_OR_RETURN(FatDataFrame out,
                                lhs.frame.ArithLazy(aop, rhs.lazy_scalar));
          return Value::Frame(std::move(out));
        }
        LAFP_ASSIGN_OR_RETURN(Scalar s, ToScalar(rhs));
        LAFP_ASSIGN_OR_RETURN(FatDataFrame out, lhs.frame.ArithScalar(aop, s));
        return Value::Frame(std::move(out));
      }
      if (lhs.kind == Value::Kind::kLazyScalar) {
        LAFP_ASSIGN_OR_RETURN(
            FatDataFrame out,
            rhs.frame.ArithLazy(aop, lhs.lazy_scalar, /*scalar_on_left=*/true));
        return Value::Frame(std::move(out));
      }
      LAFP_ASSIGN_OR_RETURN(Scalar s, ToScalar(lhs));
      LAFP_ASSIGN_OR_RETURN(
          FatDataFrame out,
          rhs.frame.ArithScalar(aop, s, /*scalar_on_left=*/true));
      return Value::Frame(std::move(out));
    }
    // String concatenation.
    if (op == "+" && (lhs.kind == Value::Kind::kStr ||
                      rhs.kind == Value::Kind::kStr)) {
      LAFP_ASSIGN_OR_RETURN(std::string l, Stringify(lhs));
      LAFP_ASSIGN_OR_RETURN(std::string r, Stringify(rhs));
      return Value::Str(l + r);
    }
    // Native scalar arithmetic (lazy scalars are forced).
    LAFP_ASSIGN_OR_RETURN(Scalar l, ToScalar(lhs));
    LAFP_ASSIGN_OR_RETURN(Scalar r, ToScalar(rhs));
    if (l.type() == df::DataType::kInt64 &&
        r.type() == df::DataType::kInt64 && aop != ArithOp::kDiv) {
      int64_t a = l.int_value();
      int64_t b = r.int_value();
      switch (aop) {
        case ArithOp::kAdd:
          return Value::Int(df::WrapAdd(a, b));
        case ArithOp::kSub:
          return Value::Int(df::WrapSub(a, b));
        case ArithOp::kMul:
          return Value::Int(df::WrapMul(a, b));
        case ArithOp::kMod:
          return Value::Int(df::FlooredModInt(a, b));
        default:
          break;
      }
    }
    LAFP_ASSIGN_OR_RETURN(double a, l.AsDouble());
    LAFP_ASSIGN_OR_RETURN(double b, r.AsDouble());
    switch (aop) {
      case ArithOp::kAdd:
        return Value::Float(a + b);
      case ArithOp::kSub:
        return Value::Float(a - b);
      case ArithOp::kMul:
        return Value::Float(a * b);
      case ArithOp::kDiv:
        return Value::Float(a / b);
      case ArithOp::kMod:
        return Value::Float(df::FlooredModDouble(a, b));
    }
    return Status::ExecutionError("bad arithmetic");
  }

  Result<Value> EvalCompare(const IRExpr& expr) {
    LAFP_ASSIGN_OR_RETURN(Value lhs, Load(expr.operands[0]));
    LAFP_ASSIGN_OR_RETURN(Value rhs, Load(expr.operands[1]));
    LAFP_ASSIGN_OR_RETURN(CompareOp op, CompareOpFromText(expr.op));
    if (lhs.kind == Value::Kind::kFrame) {
      if (rhs.kind == Value::Kind::kFrame) {
        LAFP_ASSIGN_OR_RETURN(FatDataFrame out,
                              lhs.frame.CompareCol(op, rhs.frame));
        return Value::Frame(std::move(out));
      }
      if (rhs.kind == Value::Kind::kLazyScalar) {
        LAFP_ASSIGN_OR_RETURN(FatDataFrame out,
                              lhs.frame.CompareLazy(op, rhs.lazy_scalar));
        return Value::Frame(std::move(out));
      }
      LAFP_ASSIGN_OR_RETURN(Scalar s, ToScalar(rhs));
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, lhs.frame.CompareTo(op, s));
      return Value::Frame(std::move(out));
    }
    if (rhs.kind == Value::Kind::kFrame) {
      // scalar <op> series: flip the operator.
      CompareOp flipped = op;
      switch (op) {
        case CompareOp::kLt:
          flipped = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          flipped = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          flipped = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          flipped = CompareOp::kLe;
          break;
        default:
          break;
      }
      if (lhs.kind == Value::Kind::kLazyScalar) {
        LAFP_ASSIGN_OR_RETURN(
            FatDataFrame out, rhs.frame.CompareLazy(flipped, lhs.lazy_scalar));
        return Value::Frame(std::move(out));
      }
      LAFP_ASSIGN_OR_RETURN(Scalar s, ToScalar(lhs));
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, rhs.frame.CompareTo(flipped, s));
      return Value::Frame(std::move(out));
    }
    // Native comparison.
    if (lhs.kind == Value::Kind::kStr && rhs.kind == Value::Kind::kStr) {
      int c = lhs.s.compare(rhs.s);
      switch (op) {
        case CompareOp::kEq:
          return Value::Bool(c == 0);
        case CompareOp::kNe:
          return Value::Bool(c != 0);
        case CompareOp::kLt:
          return Value::Bool(c < 0);
        case CompareOp::kLe:
          return Value::Bool(c <= 0);
        case CompareOp::kGt:
          return Value::Bool(c > 0);
        case CompareOp::kGe:
          return Value::Bool(c >= 0);
      }
    }
    LAFP_ASSIGN_OR_RETURN(Scalar l, ToScalar(lhs));
    LAFP_ASSIGN_OR_RETURN(Scalar r, ToScalar(rhs));
    if (l.is_null() || r.is_null()) {
      return Value::Bool(op == CompareOp::kNe);
    }
    LAFP_ASSIGN_OR_RETURN(double a, l.AsDouble());
    LAFP_ASSIGN_OR_RETURN(double b, r.AsDouble());
    switch (op) {
      case CompareOp::kEq:
        return Value::Bool(a == b);
      case CompareOp::kNe:
        return Value::Bool(a != b);
      case CompareOp::kLt:
        return Value::Bool(a < b);
      case CompareOp::kLe:
        return Value::Bool(a <= b);
      case CompareOp::kGt:
        return Value::Bool(a > b);
      case CompareOp::kGe:
        return Value::Bool(a >= b);
    }
    return Status::ExecutionError("bad comparison");
  }

  Result<Value> EvalUnary(const IRExpr& expr) {
    LAFP_ASSIGN_OR_RETURN(Value v, Load(expr.operands[0]));
    if (expr.op == "~" || (expr.op == "not" &&
                           v.kind == Value::Kind::kFrame)) {
      if (v.kind != Value::Kind::kFrame) {
        return Status::TypeError("~ expects a boolean mask");
      }
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, v.frame.Not());
      return Value::Frame(std::move(out));
    }
    if (expr.op == "not") {
      LAFP_ASSIGN_OR_RETURN(bool t, Truthy(v));
      return Value::Bool(!t);
    }
    if (expr.op == "-") {
      if (v.kind == Value::Kind::kInt) return Value::Int(-v.i);
      if (v.kind == Value::Kind::kFloat) return Value::Float(-v.f);
      if (v.kind == Value::Kind::kFrame) {
        LAFP_ASSIGN_OR_RETURN(
            FatDataFrame out,
            v.frame.ArithScalar(ArithOp::kMul, Scalar::Int(-1)));
        return Value::Frame(std::move(out));
      }
    }
    return Status::TypeError("bad unary operand");
  }

  Result<Value> EvalGetAttr(const IRExpr& expr) {
    LAFP_ASSIGN_OR_RETURN(Value base, Load(expr.object));
    const std::string& attr = expr.attr;
    switch (base.kind) {
      case Value::Kind::kFrame: {
        if (attr == "dt") {
          Value out = base;
          out.kind = Value::Kind::kDtAccessor;
          return out;
        }
        if (attr == "str") {
          Value out = base;
          out.kind = Value::Kind::kStrAccessor;
          return out;
        }
        // Column access (df.fare_amount).
        LAFP_ASSIGN_OR_RETURN(FatDataFrame col, base.frame.Col(attr));
        return Value::Frame(std::move(col));
      }
      case Value::Kind::kDtAccessor: {
        LAFP_ASSIGN_OR_RETURN(df::DtField field, df::DtFieldFromName(attr));
        LAFP_ASSIGN_OR_RETURN(FatDataFrame out, base.frame.Dt(field));
        return Value::Frame(std::move(out));
      }
      case Value::Kind::kModule: {
        Value out;
        out.kind = Value::Kind::kModule;
        out.s = base.s + "." + attr;  // submodule path (plt.cm etc.)
        return out;
      }
      default:
        return Status::TypeError("cannot read attribute '" + attr + "'");
    }
  }

  Result<Value> EvalGetItem(const IRExpr& expr) {
    LAFP_ASSIGN_OR_RETURN(Value base, Load(expr.object));
    LAFP_ASSIGN_OR_RETURN(Value index, Load(expr.operands[0]));
    switch (base.kind) {
      case Value::Kind::kFrame: {
        if (index.kind == Value::Kind::kStr) {
          LAFP_ASSIGN_OR_RETURN(FatDataFrame out, base.frame.Col(index.s));
          return Value::Frame(std::move(out));
        }
        if (index.kind == Value::Kind::kList) {
          LAFP_ASSIGN_OR_RETURN(std::vector<std::string> cols,
                                ToStringList(index));
          LAFP_ASSIGN_OR_RETURN(FatDataFrame out, base.frame.Select(cols));
          return Value::Frame(std::move(out));
        }
        if (index.kind == Value::Kind::kFrame) {
          LAFP_ASSIGN_OR_RETURN(FatDataFrame out,
                                base.frame.FilterBy(index.frame));
          return Value::Frame(std::move(out));
        }
        return Status::TypeError("unsupported dataframe index");
      }
      case Value::Kind::kGroupBy: {
        if (index.kind != Value::Kind::kStr) {
          return Status::TypeError("groupby index must be a column name");
        }
        Value out = base;
        out.kind = Value::Kind::kGroupByCol;
        out.column = index.s;
        return out;
      }
      case Value::Kind::kList: {
        if (index.kind != Value::Kind::kInt) {
          return Status::TypeError("list index must be an integer");
        }
        size_t i = static_cast<size_t>(index.i);
        if (i >= base.list.size()) {
          return Status::IndexError("list index out of range");
        }
        return base.list[i];
      }
      case Value::Kind::kDict: {
        if (index.kind != Value::Kind::kStr) {
          return Status::TypeError("dict index must be a string");
        }
        auto it = base.dict.find(index.s);
        if (it == base.dict.end()) {
          return Status::KeyError("no key '" + index.s + "'");
        }
        return it->second;
      }
      default:
        return Status::TypeError("value is not subscriptable");
    }
  }

  Status ExecStoreItem(const IRStmt& stmt) {
    if (!stmt.object.is_var()) {
      return Status::ExecutionError("setitem target must be a variable");
    }
    LAFP_ASSIGN_OR_RETURN(Value base, Load(stmt.object));
    LAFP_ASSIGN_OR_RETURN(Value key, Load(stmt.key));
    LAFP_ASSIGN_OR_RETURN(Value value, Load(stmt.value));
    if (base.kind != Value::Kind::kFrame ||
        key.kind != Value::Kind::kStr) {
      return Status::TypeError("setitem requires df[\"col\"] = value");
    }
    FatDataFrame updated;
    if (value.kind == Value::Kind::kFrame) {
      LAFP_ASSIGN_OR_RETURN(updated, base.frame.SetCol(key.s, value.frame));
    } else if (value.kind == Value::Kind::kLazyScalar) {
      LAFP_ASSIGN_OR_RETURN(updated,
                            base.frame.SetColLazy(key.s, value.lazy_scalar));
    } else {
      LAFP_ASSIGN_OR_RETURN(Scalar s, ToScalar(value));
      LAFP_ASSIGN_OR_RETURN(updated, base.frame.SetColScalar(key.s, s));
    }
    env_[stmt.object.var] = Value::Frame(std::move(updated));
    return Status::OK();
  }

  // ---- calls ----

  Result<Value> EvalCall(const IRExpr& expr) {
    if (!expr.global_name.empty()) return EvalGlobalCall(expr);
    LAFP_ASSIGN_OR_RETURN(Value recv, Load(expr.object));
    const std::string& method = expr.attr;
    switch (recv.kind) {
      case Value::Kind::kModule:
        return EvalModuleCall(recv.s, method, expr);
      case Value::Kind::kFrame:
        return EvalFrameCall(recv, method, expr);
      case Value::Kind::kGroupByCol:
        return EvalGroupByColCall(recv, method);
      case Value::Kind::kGroupBy:
        return Status::NotImplemented(
            "aggregate requires selecting a column first (gb[col])");
      case Value::Kind::kLazyScalar: {
        if (method == "compute") {
          // Forced scalar evaluation with §3.5 live_df hints (rewriter
          // output for branch-deciding len()).
          std::vector<lazy::TaskNodePtr> live;
          for (const auto& [name, raw] : expr.kwargs) {
            if (name != "live_df") continue;
            LAFP_ASSIGN_OR_RETURN(Value lv, Load(raw));
            if (lv.kind != Value::Kind::kList) {
              return Status::TypeError("live_df must be a list");
            }
            for (const auto& e : lv.list) {
              if (e.kind == Value::Kind::kFrame) {
                live.push_back(e.frame.node());
              }
            }
          }
          LAFP_RETURN_NOT_OK(
              session_->Compute(recv.lazy_scalar.node(), live).status());
          return recv;  // node now caches its scalar
        }
        return Status::NotImplemented("scalar." + method);
      }
      case Value::Kind::kStrAccessor: {
        if (method == "contains") {
          LAFP_ASSIGN_OR_RETURN(Value needle, Load(expr.operands.at(0)));
          if (needle.kind != Value::Kind::kStr) {
            return Status::TypeError("str.contains expects a string");
          }
          LAFP_ASSIGN_OR_RETURN(FatDataFrame out,
                                recv.frame.StrContains(needle.s));
          return Value::Frame(std::move(out));
        }
        return Status::NotImplemented("str." + method);
      }
      default:
        return Status::TypeError("cannot call method '" + method + "'");
    }
  }

  Result<Value> EvalGlobalCall(const IRExpr& expr) {
    const std::string& fn = expr.global_name;
    if (fn == "print") return EvalPrint(expr);
    if (fn == "len") {
      LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands.at(0)));
      if (arg.kind == Value::Kind::kFrame) {
        LAFP_ASSIGN_OR_RETURN(LazyScalar n, arg.frame.Len());
        Value out;
        out.kind = Value::Kind::kLazyScalar;
        out.lazy_scalar = std::move(n);
        return out;
      }
      if (arg.kind == Value::Kind::kList) {
        return Value::Int(static_cast<int64_t>(arg.list.size()));
      }
      if (arg.kind == Value::Kind::kStr) {
        return Value::Int(static_cast<int64_t>(arg.s.size()));
      }
      return Status::TypeError("len() of unsupported value");
    }
    if (fn == "plot") return EvalPlot(expr);
    if (fn == "checksum") return EvalChecksum(expr);
    if (fn == "int") {
      LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands.at(0)));
      LAFP_ASSIGN_OR_RETURN(Scalar s, ToScalar(arg));
      LAFP_ASSIGN_OR_RETURN(double d, s.AsDouble());
      return Value::Int(static_cast<int64_t>(d));
    }
    if (fn == "float") {
      LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands.at(0)));
      LAFP_ASSIGN_OR_RETURN(Scalar s, ToScalar(arg));
      LAFP_ASSIGN_OR_RETURN(double d, s.AsDouble());
      return Value::Float(d);
    }
    return Status::NotImplemented("global function '" + fn + "'");
  }

  Result<Value> EvalModuleCall(const std::string& module,
                               const std::string& method,
                               const IRExpr& expr) {
    if (model_.IsPandasModule(module)) {
      if (method == "read_csv") {
        LAFP_ASSIGN_OR_RETURN(Value path, Load(expr.operands.at(0)));
        if (path.kind != Value::Kind::kStr) {
          return Status::TypeError("read_csv expects a path string");
        }
        io::CsvReadOptions options;
        for (const auto& [name, raw] : expr.kwargs) {
          LAFP_ASSIGN_OR_RETURN(Value v, Load(raw));
          if (name == "usecols") {
            LAFP_ASSIGN_OR_RETURN(options.usecols, ToStringList(v));
          } else if (name == "nrows") {
            if (v.kind != Value::Kind::kInt) {
              return Status::TypeError("nrows must be an integer");
            }
            options.nrows = static_cast<size_t>(v.i);
          } else if (name == "dtype") {
            if (v.kind != Value::Kind::kDict) {
              return Status::TypeError("dtype must be a dict");
            }
            for (const auto& [col, type_name] : v.dict) {
              if (type_name.kind != Value::Kind::kStr) {
                return Status::TypeError("dtype values must be strings");
              }
              LAFP_ASSIGN_OR_RETURN(df::DataType t,
                                    df::DataTypeFromName(type_name.s));
              options.dtypes[col] = t;
            }
          } else if (name == "index_col") {
            // Accepted for API fidelity; row labels are implicit here.
          } else {
            return Status::NotImplemented("read_csv kwarg '" + name + "'");
          }
        }
        LAFP_ASSIGN_OR_RETURN(FatDataFrame frame,
                              FatDataFrame::ReadCsv(session_, path.s,
                                                    std::move(options)));
        return Value::Frame(std::move(frame));
      }
      if (method == "read_lfc") {
        LAFP_ASSIGN_OR_RETURN(Value path, Load(expr.operands.at(0)));
        if (path.kind != Value::Kind::kStr) {
          return Status::TypeError("read_lfc expects a path string");
        }
        io::LfcReadOptions options;
        for (const auto& [name, raw] : expr.kwargs) {
          LAFP_ASSIGN_OR_RETURN(Value v, Load(raw));
          if (name == "usecols") {
            LAFP_ASSIGN_OR_RETURN(options.usecols, ToStringList(v));
          } else if (name == "nrows") {
            if (v.kind != Value::Kind::kInt) {
              return Status::TypeError("nrows must be an integer");
            }
            options.nrows = static_cast<size_t>(v.i);
          } else {
            return Status::NotImplemented("read_lfc kwarg '" + name + "'");
          }
        }
        LAFP_ASSIGN_OR_RETURN(FatDataFrame frame,
                              FatDataFrame::ReadLfc(session_, path.s,
                                                    std::move(options)));
        return Value::Frame(std::move(frame));
      }
      if (method == "to_datetime") {
        LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands.at(0)));
        if (arg.kind != Value::Kind::kFrame) {
          return Status::TypeError("to_datetime expects a series");
        }
        LAFP_ASSIGN_OR_RETURN(FatDataFrame out, arg.frame.ToDatetime());
        return Value::Frame(std::move(out));
      }
      if (method == "concat") {
        LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands.at(0)));
        if (arg.kind != Value::Kind::kList) {
          return Status::TypeError("pd.concat expects a list");
        }
        std::vector<FatDataFrame> frames;
        for (const auto& e : arg.list) {
          if (e.kind != Value::Kind::kFrame) {
            return Status::TypeError("pd.concat expects dataframes");
          }
          frames.push_back(e.frame);
        }
        LAFP_ASSIGN_OR_RETURN(FatDataFrame out,
                              FatDataFrame::Concat(session_, frames));
        return Value::Frame(std::move(out));
      }
      if (method == "flush") {
        LAFP_RETURN_NOT_OK(session_->Flush());
        return Value::None();
      }
      if (method == "analyze") {
        // JIT analysis already ran (or was skipped) by the pipeline
        // driver; at execution time this is a no-op marker.
        return Value::None();
      }
      return Status::NotImplemented("pd." + method);
    }
    if (model_.IsExternalModule(module) ||
        module.find('.') != std::string::npos) {
      // External module functions (plt.plot, plt.savefig, ...): §3.4.
      return EvalExternalCall(module + "." + method, expr);
    }
    return Status::NotImplemented(module + "." + method);
  }

  /// External calls require materialized (non-lazy) inputs; a lazy frame
  /// argument is computed here — full materialization, the paper's OOM
  /// hazard for the emp program.
  Result<Value> EvalExternalCall(const std::string& name,
                                 const IRExpr& expr) {
    size_t rows = 0;
    bool saw_frame = false;
    for (const auto& raw : expr.operands) {
      LAFP_ASSIGN_OR_RETURN(Value v, Load(raw));
      if (v.kind == Value::Kind::kFrame) {
        LAFP_ASSIGN_OR_RETURN(exec::EagerValue eager, v.frame.Compute());
        rows += eager.is_scalar ? 1 : eager.frame.num_rows();
        saw_frame = true;
      } else if (v.kind == Value::Kind::kLazyScalar) {
        LAFP_RETURN_NOT_OK(v.lazy_scalar.Value().status());
        saw_frame = true;
      }
    }
    // Simulated side effect with stable output (ordering vs lazy prints
    // is part of what §3.4 tests).
    LAFP_RETURN_NOT_OK(session_->Flush());
    session_->out() << "[" << name << ": "
                    << (saw_frame ? std::to_string(rows) + " rows"
                                  : "ok")
                    << "]\n";
    return Value::None();
  }

  Result<Value> EvalPlot(const IRExpr& expr) {
    return EvalExternalCall("plot", expr);
  }

  /// Canonical value repr for hashing: doubles are rounded to a few
  /// significant digits so floating-point summation order (partitioned
  /// two-phase aggregation vs single-pass) does not flip the hash. Six
  /// digits keeps the rounding granularity ~1e-6 relative, orders of
  /// magnitude above the ~1e-10 relative reassociation error.
  static std::string HashValue(const df::Column& col, size_t row) {
    if (col.IsValid(row) && col.type() == df::DataType::kDouble) {
      char buf[40];
      double v = col.DoubleAt(row);
      // Collapse -0.0: an all-int partition computes +0 where the
      // whole-column double path computes -0 (e.g. -1 * 0), and "%.6g"
      // would render them differently.
      std::snprintf(buf, sizeof(buf), "%.6g", v == 0.0 ? 0.0 : v);
      return buf;
    }
    return col.ValueString(row);
  }

  static std::string HashableDump(const df::DataFrame& frame) {
    std::string header;
    for (size_t c = 0; c < frame.num_columns(); ++c) {
      if (c > 0) header += ",";
      header += frame.names()[c];
    }
    header += "\n";
    std::vector<std::string> rows(frame.num_rows());
    for (size_t r = 0; r < frame.num_rows(); ++r) {
      for (size_t c = 0; c < frame.num_columns(); ++c) {
        if (c > 0) rows[r] += ",";
        rows[r] += HashValue(*frame.column(c), r);
      }
    }
    // Row order canonicalized so Dask results hash identically (§5.2).
    std::sort(rows.begin(), rows.end());
    for (const auto& row : rows) {
      header += row;
      header += "\n";
    }
    return header;
  }

  Result<Value> EvalChecksum(const IRExpr& expr) {
    LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands.at(0)));
    std::string digest;
    if (arg.kind == Value::Kind::kFrame) {
      LAFP_ASSIGN_OR_RETURN(exec::EagerValue eager, arg.frame.Compute());
      if (eager.is_scalar) {
        digest = Md5::Of(eager.scalar.ToString());
      } else {
        std::string dump = HashableDump(eager.frame);
        if (std::getenv("LAFP_DUMP_CHECKSUM") != nullptr) {
          std::fprintf(stderr, "--- checksum input ---\n%s", dump.c_str());
        }
        digest = Md5::Of(dump);
      }
    } else {
      LAFP_ASSIGN_OR_RETURN(Scalar s, ToScalar(arg));
      digest = Md5::Of(s.ToString());
    }
    LAFP_RETURN_NOT_OK(session_->Flush());
    session_->out() << "checksum " << digest << "\n";
    return Value::None();
  }

  Result<Value> EvalPrint(const IRExpr& expr) {
    std::vector<Session::PrintArg> args;
    bool first = true;
    for (const auto& raw : expr.operands) {
      if (!first) args.push_back(Session::PrintArg::Literal(" "));
      first = false;
      LAFP_ASSIGN_OR_RETURN(Value v, Load(raw));
      LAFP_RETURN_NOT_OK(AppendPrintArg(v, &args));
    }
    LAFP_RETURN_NOT_OK(session_->Print(args));
    return Value::None();
  }

  Status AppendPrintArg(const Value& v, std::vector<Session::PrintArg>* args) {
    switch (v.kind) {
      case Value::Kind::kFrame:
        args->push_back(Session::PrintArg::Value(v.frame.node()));
        return Status::OK();
      case Value::Kind::kLazyScalar:
        args->push_back(Session::PrintArg::Value(v.lazy_scalar.node()));
        return Status::OK();
      case Value::Kind::kFormatted: {
        for (size_t i = 0; i < v.literals.size(); ++i) {
          if (!v.literals[i].empty()) {
            args->push_back(Session::PrintArg::Literal(v.literals[i]));
          }
          if (i < v.parts.size()) {
            LAFP_RETURN_NOT_OK(AppendPrintArg(v.parts[i], args));
          }
        }
        return Status::OK();
      }
      default: {
        LAFP_ASSIGN_OR_RETURN(std::string text, Stringify(v));
        args->push_back(Session::PrintArg::Literal(std::move(text)));
        return Status::OK();
      }
    }
  }

  Result<std::string> Stringify(const Value& v) {
    switch (v.kind) {
      case Value::Kind::kNone:
        return std::string("None");
      case Value::Kind::kInt:
        return std::to_string(v.i);
      case Value::Kind::kFloat:
        return FormatDouble(v.f);
      case Value::Kind::kBool:
        return std::string(v.b ? "True" : "False");
      case Value::Kind::kStr:
        return v.s;
      case Value::Kind::kLazyScalar: {
        LAFP_ASSIGN_OR_RETURN(Scalar s, v.lazy_scalar.Value());
        return s.ToString();
      }
      case Value::Kind::kFormatted: {
        std::string out;
        for (size_t i = 0; i < v.literals.size(); ++i) {
          out += v.literals[i];
          if (i < v.parts.size()) {
            LAFP_ASSIGN_OR_RETURN(std::string part, Stringify(v.parts[i]));
            out += part;
          }
        }
        return out;
      }
      default:
        return Status::TypeError("cannot stringify value");
    }
  }

  Result<Value> EvalFrameCall(const Value& recv, const std::string& method,
                              const IRExpr& expr) {
    const FatDataFrame& frame = recv.frame;
    auto kwarg = [&](const std::string& name) -> const IRValue* {
      for (const auto& [n, v] : expr.kwargs) {
        if (n == name) return &v;
      }
      return nullptr;
    };

    if (method == "head") {
      size_t n = 5;
      if (!expr.operands.empty()) {
        LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands[0]));
        if (arg.kind == Value::Kind::kInt) n = static_cast<size_t>(arg.i);
      }
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.Head(n));
      return Value::Frame(std::move(out));
    }
    if (method == "describe") {
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.Describe());
      return Value::Frame(std::move(out));
    }
    if (method == "groupby") {
      Value out = recv;
      out.kind = Value::Kind::kGroupBy;
      LAFP_ASSIGN_OR_RETURN(Value keys, Load(expr.operands.at(0)));
      LAFP_ASSIGN_OR_RETURN(out.keys, ToStringList(keys));
      return out;
    }
    if (IsSeriesReduction(method)) {
      AggFunc func = *df::AggFuncFromName(method);
      LAFP_ASSIGN_OR_RETURN(LazyScalar out, frame.Reduce(func));
      Value v;
      v.kind = Value::Kind::kLazyScalar;
      v.lazy_scalar = std::move(out);
      return v;
    }
    if (method == "merge") {
      LAFP_ASSIGN_OR_RETURN(Value other, Load(expr.operands.at(0)));
      if (other.kind != Value::Kind::kFrame) {
        return Status::TypeError("merge expects a dataframe");
      }
      const IRValue* on = kwarg("on");
      if (on == nullptr) return Status::Invalid("merge requires on=");
      LAFP_ASSIGN_OR_RETURN(Value on_val, Load(*on));
      LAFP_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                            ToStringList(on_val));
      df::JoinType how = df::JoinType::kInner;
      if (const IRValue* h = kwarg("how"); h != nullptr) {
        LAFP_ASSIGN_OR_RETURN(Value how_val, Load(*h));
        if (how_val.kind != Value::Kind::kStr) {
          return Status::TypeError("how must be a string");
        }
        if (how_val.s == "left") {
          how = df::JoinType::kLeft;
        } else if (how_val.s != "inner") {
          return Status::NotImplemented("merge how='" + how_val.s + "'");
        }
      }
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out,
                            frame.Merge(other.frame, keys, how));
      return Value::Frame(std::move(out));
    }
    if (method == "sort_values") {
      const IRValue* by = kwarg("by");
      std::vector<std::string> keys;
      if (by != nullptr) {
        LAFP_ASSIGN_OR_RETURN(Value by_val, Load(*by));
        LAFP_ASSIGN_OR_RETURN(keys, ToStringList(by_val));
      } else if (!expr.operands.empty()) {
        LAFP_ASSIGN_OR_RETURN(Value by_val, Load(expr.operands[0]));
        LAFP_ASSIGN_OR_RETURN(keys, ToStringList(by_val));
      } else {
        return Status::Invalid("sort_values requires by=");
      }
      std::vector<bool> ascending;
      if (const IRValue* asc = kwarg("ascending"); asc != nullptr) {
        LAFP_ASSIGN_OR_RETURN(Value asc_val, Load(*asc));
        if (asc_val.kind == Value::Kind::kBool) {
          ascending = {asc_val.b};
        } else if (asc_val.kind == Value::Kind::kList) {
          for (const auto& e : asc_val.list) {
            if (e.kind != Value::Kind::kBool) {
              return Status::TypeError("ascending must be booleans");
            }
            ascending.push_back(e.b);
          }
        }
      }
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out,
                            frame.SortValues(keys, ascending));
      return Value::Frame(std::move(out));
    }
    if (method == "drop_duplicates") {
      std::vector<std::string> subset;
      if (const IRValue* s = kwarg("subset"); s != nullptr) {
        LAFP_ASSIGN_OR_RETURN(Value sub, Load(*s));
        LAFP_ASSIGN_OR_RETURN(subset, ToStringList(sub));
      }
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.DropDuplicates(subset));
      return Value::Frame(std::move(out));
    }
    if (method == "fillna") {
      LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands.at(0)));
      LAFP_ASSIGN_OR_RETURN(Scalar s, ToScalar(arg));
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.FillNa(s));
      return Value::Frame(std::move(out));
    }
    if (method == "dropna") {
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.DropNa());
      return Value::Frame(std::move(out));
    }
    if (method == "rename") {
      const IRValue* cols = kwarg("columns");
      if (cols == nullptr) return Status::Invalid("rename requires columns=");
      LAFP_ASSIGN_OR_RETURN(Value mapping, Load(*cols));
      if (mapping.kind != Value::Kind::kDict) {
        return Status::TypeError("columns must be a dict");
      }
      std::map<std::string, std::string> renames;
      for (const auto& [from, to] : mapping.dict) {
        if (to.kind != Value::Kind::kStr) {
          return Status::TypeError("rename targets must be strings");
        }
        renames[from] = to.s;
      }
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.Rename(renames));
      return Value::Frame(std::move(out));
    }
    if (method == "drop") {
      const IRValue* cols = kwarg("columns");
      if (cols == nullptr) return Status::Invalid("drop requires columns=");
      LAFP_ASSIGN_OR_RETURN(Value list, Load(*cols));
      LAFP_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            ToStringList(list));
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.Drop(names));
      return Value::Frame(std::move(out));
    }
    if (method == "astype") {
      LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands.at(0)));
      if (arg.kind != Value::Kind::kStr) {
        return Status::TypeError("astype expects a dtype name");
      }
      LAFP_ASSIGN_OR_RETURN(df::DataType t, df::DataTypeFromName(arg.s));
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.AsType(t));
      return Value::Frame(std::move(out));
    }
    if (method == "abs") {
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.Abs());
      return Value::Frame(std::move(out));
    }
    if (method == "round") {
      int digits = 0;
      if (!expr.operands.empty()) {
        LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands[0]));
        if (arg.kind == Value::Kind::kInt) digits = static_cast<int>(arg.i);
      }
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.Round(digits));
      return Value::Frame(std::move(out));
    }
    if (method == "isna") {
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.IsNull());
      return Value::Frame(std::move(out));
    }
    if (method == "isin") {
      LAFP_ASSIGN_OR_RETURN(Value arg, Load(expr.operands.at(0)));
      if (arg.kind != Value::Kind::kList) {
        return Status::TypeError("isin expects a list");
      }
      std::vector<Scalar> values;
      for (const auto& e : arg.list) {
        LAFP_ASSIGN_OR_RETURN(Scalar v, ToScalar(e));
        values.push_back(std::move(v));
      }
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.IsIn(std::move(values)));
      return Value::Frame(std::move(out));
    }
    if (method == "unique") {
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.UniqueValues());
      return Value::Frame(std::move(out));
    }
    if (method == "value_counts") {
      LAFP_ASSIGN_OR_RETURN(FatDataFrame out, frame.ValueCounts());
      return Value::Frame(std::move(out));
    }
    if (method == "compute") {
      // The §3.4/§3.5 forced-computation call with live_df hints.
      std::vector<FatDataFrame> live;
      if (const IRValue* l = kwarg("live_df"); l != nullptr) {
        LAFP_ASSIGN_OR_RETURN(Value lv, Load(*l));
        if (lv.kind != Value::Kind::kList) {
          return Status::TypeError("live_df must be a list");
        }
        for (const auto& e : lv.list) {
          if (e.kind == Value::Kind::kFrame) live.push_back(e.frame);
        }
      }
      LAFP_RETURN_NOT_OK(frame.Compute(live).status());
      return recv;  // the node now holds its materialized result
    }
    return Status::NotImplemented("DataFrame." + method);
  }

  Result<Value> EvalGroupByColCall(const Value& recv,
                                   const std::string& method) {
    if (!IsSeriesReduction(method)) {
      return Status::NotImplemented("groupby agg '" + method + "'");
    }
    AggFunc func = *df::AggFuncFromName(method);
    std::vector<df::AggSpec> aggs{{recv.column, func, recv.column}};
    LAFP_ASSIGN_OR_RETURN(FatDataFrame out,
                          recv.frame.GroupByAgg(recv.keys, aggs));
    return Value::Frame(std::move(out));
  }

  const IRProgram& program_;
  const ProgramModel& model_;
  Session* session_;
  InterpreterStats* stats_;
  std::unordered_map<std::string, Value> env_;
  std::unordered_map<std::string, size_t> labels_;
};

}  // namespace

Status ExecuteIR(const IRProgram& program, const ProgramModel& model,
                 Session* session, InterpreterStats* stats) {
  return Interpreter(program, model, session, stats).Run();
}

}  // namespace lafp::script
