#include "script/analyze.h"

#include "common/macros.h"
#include "common/timer.h"
#include "script/codegen.h"

namespace lafp::script {

Result<AnalyzeResult> Analyze(const std::string& source,
                              const AnalyzeOptions& options) {
  Timer timer;
  AnalyzeResult result;
  LAFP_ASSIGN_OR_RETURN(Module module, Parse(source));
  LAFP_ASSIGN_OR_RETURN(IRProgram ir, LowerToIR(module));
  LAFP_ASSIGN_OR_RETURN(result.optimized_ir,
                        Rewrite(ir, options.rewrite, &result.stats));
  result.model = BuildProgramModel(result.optimized_ir);
  if (options.regenerate_source) {
    LAFP_ASSIGN_OR_RETURN(result.regenerated_source,
                          GenerateSource(result.optimized_ir));
  }
  result.analysis_seconds = timer.ElapsedSeconds();
  return result;
}

Status RunProgram(const std::string& source, lazy::Session* session,
                  const RunOptions& options, InterpreterStats* stats,
                  AnalyzeResult* analyze_result) {
  if (options.analyze) {
    LAFP_ASSIGN_OR_RETURN(AnalyzeResult analyzed,
                          Analyze(source, options.analyze_options));
    Status st =
        ExecuteIR(analyzed.optimized_ir, analyzed.model, session, stats);
    if (analyze_result != nullptr) *analyze_result = std::move(analyzed);
    LAFP_RETURN_NOT_OK(st);
    return session->Flush();  // safety net; rewriter normally inserted one
  }
  LAFP_ASSIGN_OR_RETURN(Module module, Parse(source));
  LAFP_ASSIGN_OR_RETURN(IRProgram ir, LowerToIR(module));
  ProgramModel model = BuildProgramModel(ir);
  LAFP_RETURN_NOT_OK(ExecuteIR(ir, model, session, stats));
  // Plain programs have no flush statement; emit pending prints the way
  // a program exit would.
  return session->Flush();
}

}  // namespace lafp::script
