#include "script/model.h"

#include "common/string_util.h"

namespace lafp::script {

const VarInfo* ProgramModel::Find(const std::string& var) const {
  auto it = vars.find(var);
  return it == vars.end() ? nullptr : &it->second;
}

VarKind ProgramModel::KindOf(const std::string& var) const {
  const VarInfo* info = Find(var);
  return info == nullptr ? VarKind::kUnknown : info->kind;
}

bool IsSeriesReduction(const std::string& name) {
  return name == "sum" || name == "mean" || name == "min" ||
         name == "max" || name == "count" || name == "nunique";
}

bool IsInformational(const std::string& name) {
  return name == "head" || name == "info" || name == "describe";
}

bool IsFrameToFrameMethod(const std::string& name) {
  return name == "merge" || name == "sort_values" ||
         name == "drop_duplicates" || name == "fillna" ||
         name == "dropna" || name == "rename" || name == "drop" ||
         name == "compute" || name == "head" || name == "describe";
}

bool IsSeriesToSeriesMethod(const std::string& name) {
  return name == "astype" || name == "fillna" || name == "abs" ||
         name == "round" || name == "isna" || name == "unique" ||
         name == "contains" || name == "to_frame" || name == "isin";
}

namespace {

bool IsPandasModuleName(const std::string& module) {
  return module == "pandas" || module == "lazyfatpandas.pandas" ||
         module == "lazyfatpandas" || StartsWith(module, "pandas.");
}

/// Definition of a variable from one IR expression.
VarInfo InferExpr(const IRExpr& expr, ProgramModel* model) {
  VarInfo out;
  switch (expr.kind) {
    case IRExprKind::kAtom:
      if (expr.atom.is_var()) {
        const VarInfo* src = model->Find(expr.atom.var);
        if (src != nullptr) out = *src;
        out.source_var = expr.atom.var;
      } else if (expr.atom.kind == IRValue::Kind::kConst) {
        out.kind = expr.atom.ctype == IRValue::ConstType::kStr
                       ? VarKind::kUnknown
                       : VarKind::kScalar;
      }
      return out;
    case IRExprKind::kList: {
      out.kind = VarKind::kStringList;
      for (const auto& v : expr.operands) {
        if (v.is_var()) out.list_vars.push_back(v.var);
        if (v.is_str()) {
          out.list_values.push_back(v.str_value);
        } else {
          out.kind = VarKind::kUnknown;  // non-constant list
          out.list_values.clear();
        }
      }
      return out;
    }
    case IRExprKind::kDict:
      out.kind = VarKind::kDict;
      return out;
    case IRExprKind::kBinOp: {
      // Series arithmetic / boolean masks stay series.
      for (const auto& v : expr.operands) {
        if (v.is_var() &&
            model->KindOf(v.var) == VarKind::kSeries) {
          out.kind = VarKind::kSeries;
          out.source_var = v.var;
          const VarInfo* src = model->Find(v.var);
          if (src != nullptr) out.column = src->column;
          return out;
        }
      }
      out.kind = VarKind::kScalar;
      return out;
    }
    case IRExprKind::kCompare:
    case IRExprKind::kUnaryOp: {
      for (const auto& v : expr.operands) {
        if (v.is_var() && model->KindOf(v.var) == VarKind::kSeries) {
          out.kind = VarKind::kSeries;
          out.source_var = v.var;
          return out;
        }
      }
      out.kind = VarKind::kScalar;
      return out;
    }
    case IRExprKind::kGetAttr: {
      if (!expr.object.is_var()) return out;
      const std::string& base = expr.object.var;
      VarKind base_kind = model->KindOf(base);
      if (base_kind == VarKind::kDataFrame) {
        out.kind = VarKind::kSeries;
        out.source_var = base;
        out.column = expr.attr;
        return out;
      }
      if (base_kind == VarKind::kSeries) {
        if (expr.attr == "dt") {
          out.kind = VarKind::kDtAccessor;
          out.source_var = base;
          return out;
        }
        if (expr.attr == "str") {
          out.kind = VarKind::kStrAccessor;
          out.source_var = base;
          return out;
        }
        out.kind = VarKind::kSeries;  // .values etc.
        out.source_var = base;
        return out;
      }
      if (base_kind == VarKind::kDtAccessor) {
        out.kind = VarKind::kSeries;  // .dayofweek / .hour / ...
        out.source_var = base;
        return out;
      }
      return out;
    }
    case IRExprKind::kGetItem: {
      if (!expr.object.is_var()) return out;
      const std::string& base = expr.object.var;
      VarKind base_kind = model->KindOf(base);
      const IRValue& index = expr.operands[0];
      if (base_kind == VarKind::kDataFrame) {
        if (index.is_str()) {
          out.kind = VarKind::kSeries;
          out.source_var = base;
          out.column = index.str_value;
          return out;
        }
        out.kind = VarKind::kDataFrame;  // select or filter
        out.source_var = base;
        return out;
      }
      if (base_kind == VarKind::kGroupBy && index.is_str()) {
        const VarInfo* gb = model->Find(base);
        out.kind = VarKind::kGroupByCol;
        out.source_var = base;
        out.column = index.str_value;
        if (gb != nullptr) out.groupby_keys = gb->groupby_keys;
        return out;
      }
      return out;
    }
    case IRExprKind::kCall: {
      if (!expr.global_name.empty()) {
        if (expr.global_name == "len") {
          out.kind = VarKind::kScalar;
        }
        return out;
      }
      const std::string& recv = expr.object.is_var() ? expr.object.var : "";
      VarKind recv_kind = model->KindOf(recv);
      const std::string& method = expr.attr;
      if (model->IsPandasModule(recv)) {
        if (method == "read_csv" || method == "read_parquet" ||
            method == "read_lfc") {
          out.kind = VarKind::kDataFrame;
        } else if (method == "to_datetime") {
          out.kind = VarKind::kSeries;
          if (!expr.operands.empty() && expr.operands[0].is_var()) {
            out.source_var = expr.operands[0].var;
          }
        } else if (method == "concat") {
          out.kind = VarKind::kDataFrame;
        }
        return out;
      }
      if (recv_kind == VarKind::kDataFrame) {
        if (method == "groupby") {
          out.kind = VarKind::kGroupBy;
          out.source_var = recv;
          if (!expr.operands.empty() && expr.operands[0].is_var()) {
            const VarInfo* keys = model->Find(expr.operands[0].var);
            if (keys != nullptr) out.groupby_keys = keys->list_values;
          } else if (!expr.operands.empty() && expr.operands[0].is_str()) {
            out.groupby_keys = {expr.operands[0].str_value};
          }
          return out;
        }
        if (IsFrameToFrameMethod(method) || IsInformational(method)) {
          out.kind = VarKind::kDataFrame;
          out.source_var = recv;
          out.informational = IsInformational(method);
          return out;
        }
        if (IsSeriesReduction(method)) {
          out.kind = VarKind::kScalar;
          return out;
        }
        return out;
      }
      if (recv_kind == VarKind::kSeries ||
          recv_kind == VarKind::kStrAccessor) {
        if (IsSeriesReduction(method)) {
          out.kind = VarKind::kScalar;
          return out;
        }
        if (method == "value_counts") {
          out.kind = VarKind::kDataFrame;
          out.source_var = recv;
          return out;
        }
        if (IsSeriesToSeriesMethod(method) || method == "head") {
          out.kind = VarKind::kSeries;
          out.source_var = recv;
          return out;
        }
        return out;
      }
      if (recv_kind == VarKind::kGroupByCol && IsSeriesReduction(method)) {
        out.kind = VarKind::kDataFrame;  // keys + aggregate column
        out.source_var = recv;
        return out;
      }
      if (recv_kind == VarKind::kScalar && method == "compute") {
        out.kind = VarKind::kScalar;
        return out;
      }
      return out;
    }
    case IRExprKind::kFString:
      out.kind = VarKind::kUnknown;  // a string value
      return out;
  }
  return out;
}

}  // namespace

ProgramModel BuildProgramModel(const IRProgram& program) {
  ProgramModel model;
  for (const IRStmt& stmt : program.stmts) {
    switch (stmt.kind) {
      case IRStmtKind::kImport: {
        std::string alias = stmt.is_from_import
                                ? stmt.imported_name
                                : (stmt.alias.empty() ? stmt.module
                                                      : stmt.alias);
        VarInfo info;
        info.kind = VarKind::kModule;
        info.module_name = stmt.module;
        model.vars[alias] = info;
        if (IsPandasModuleName(stmt.module)) {
          model.pandas_aliases.insert(alias);
        } else if (!stmt.is_from_import) {
          model.external_modules.insert(alias);
        }
        break;
      }
      case IRStmtKind::kAssign:
        model.vars[stmt.target] = InferExpr(stmt.expr, &model);
        break;
      case IRStmtKind::kStoreItem:
        if (stmt.key.is_str()) {
          model.assigned_columns.insert(stmt.key.str_value);
        }
        break;
      default:
        break;
    }
  }
  return model;
}

}  // namespace lafp::script
