#include "serve/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"

namespace lafp::serve {

namespace {

constexpr size_t kMaxHeaderBytes = 64u << 10;

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Percent-decoding for query components ('+' decodes to space).
std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() &&
               HexDigit(s[i + 1]) >= 0 && HexDigit(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexDigit(s[i + 1]) * 16 +
                                      HexDigit(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// Blocking read of exactly `n` more bytes into `buf` (appends).
Status ReadExact(int fd, size_t n, std::string* buf) {
  size_t start = buf->size();
  buf->resize(start + n);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf->data() + start + got, n - got, 0);
    if (r == 0) {
      return Status::IOError("peer closed connection mid-request");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 507: return "Insufficient Storage";
    default: return "Unknown";
  }
}

void ParseTarget(const std::string& target, std::string* path,
                 std::map<std::string, std::string>* params) {
  params->clear();
  auto q = target.find('?');
  *path = target.substr(0, q);
  if (q == std::string::npos) return;
  for (const std::string& pair : Split(target.substr(q + 1), '&')) {
    if (pair.empty()) continue;
    auto eq = pair.find('=');
    std::string key = UrlDecode(pair.substr(0, eq));
    std::string value =
        eq == std::string::npos ? "" : UrlDecode(pair.substr(eq + 1));
    (*params)[std::move(key)] = std::move(value);
  }
}

Status ReadHttpRequest(int fd, HttpRequest* out, size_t max_body_bytes) {
  *out = HttpRequest();
  // Accumulate until the blank line ending the header section; anything
  // past it is the body prefix.
  std::string buf;
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    if (buf.size() > kMaxHeaderBytes) {
      return Status::Invalid("http: header section too large");
    }
    char chunk[4096];
    ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r == 0) {
      if (buf.empty()) return Status::IOError("http: empty connection");
      return Status::IOError("peer closed connection mid-request");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    buf.append(chunk, static_cast<size_t>(r));
    // RFC 9112 §2.2: ignore CRLFs arriving before the request line (some
    // clients terminate the previous message with an extra CRLF). Without
    // this, two leading CRLFs would satisfy the blank-line search below
    // and parse an empty request line. Stripped as bytes arrive so the
    // check stays O(1) per chunk regardless of segmentation.
    while (buf.size() >= 2 && buf[0] == '\r' && buf[1] == '\n') {
      buf.erase(0, 2);
    }
    header_end = buf.find("\r\n\r\n");
  }

  // Request line: METHOD SP TARGET SP VERSION.
  size_t line_end = buf.find("\r\n");
  std::string request_line = buf.substr(0, line_end);
  std::vector<std::string> parts = Split(request_line, ' ');
  if (parts.size() != 3 || parts[0].empty() || parts[1].empty() ||
      parts[2].rfind("HTTP/", 0) != 0) {
    return Status::Invalid("http: malformed request line '" + request_line +
                           "'");
  }
  out->method = parts[0];
  ParseTarget(parts[1], &out->path, &out->params);

  // Header fields.
  size_t pos = line_end + 2;
  while (pos < header_end) {
    size_t end = buf.find("\r\n", pos);
    std::string_view line(buf.data() + pos, end - pos);
    pos = end + 2;
    auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::Invalid("http: malformed header '" + std::string(line) +
                             "'");
    }
    out->headers[ToLower(Trim(line.substr(0, colon)))] =
        std::string(Trim(line.substr(colon + 1)));
  }

  // Body: Content-Length framing only (no chunked encoding).
  size_t content_length = 0;
  auto it = out->headers.find("content-length");
  if (it != out->headers.end()) {
    auto n = ParseInt64(it->second);
    if (!n.has_value() || *n < 0) {
      return Status::Invalid("http: bad Content-Length '" + it->second + "'");
    }
    content_length = static_cast<size_t>(*n);
  }
  if (content_length > max_body_bytes) {
    return Status::Invalid("http: body larger than " +
                           std::to_string(max_body_bytes) + " bytes");
  }
  out->body = buf.substr(header_end + 4);
  if (out->body.size() > content_length) {
    // Bytes past Content-Length are outside this message (a trailing
    // CRLF from a sloppy client, or the start of a pipelined request).
    // They used to 400 the request — but only when the client's write
    // segmentation happened to land them in the same recv burst as the
    // header, which made slow and fast clients see different answers for
    // identical bytes. The message itself ends at Content-Length;
    // truncate to it.
    out->body.resize(content_length);
  }
  if (out->body.size() < content_length) {
    LAFP_RETURN_NOT_OK(
        ReadExact(fd, content_length - out->body.size(), &out->body));
  }
  return Status::OK();
}

Status WriteHttpResponse(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    // MSG_NOSIGNAL: a disconnected client must surface as EPIPE, not kill
    // the server process with SIGPIPE.
    ssize_t r = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace lafp::serve
