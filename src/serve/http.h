#ifndef LAFP_SERVE_HTTP_H_
#define LAFP_SERVE_HTTP_H_

#include <map>
#include <string>

#include "common/status.h"

namespace lafp::serve {

/// One parsed HTTP/1.1 request. The parser is deliberately minimal — a
/// request line, headers, and a Content-Length body are all the query
/// service needs — but strict about what it does accept: malformed
/// framing is an error, never a guess.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // target path without the query string
  /// Decoded query parameters (?mode=lazy&trace=1).
  std::map<std::string, std::string> params;
  /// Header names are lower-cased; values are trimmed.
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// The standard reason phrase for `status` ("OK", "Too Many Requests",
/// ...); "Unknown" for codes the service never emits.
const char* HttpStatusReason(int status);

/// Read one request from a blocking socket. Fails with kInvalid on
/// malformed framing (bad request line, non-numeric Content-Length, a
/// header section over 64 KiB, a body over `max_body_bytes`) and with
/// kIOError when the peer closes mid-request.
Status ReadHttpRequest(int fd, HttpRequest* out,
                       size_t max_body_bytes = 4u << 20);

/// Write a complete response (status line, headers, body) to a blocking
/// socket. Always sends Content-Length and Connection: close — the
/// service is one-request-per-connection by design.
Status WriteHttpResponse(int fd, const HttpResponse& response);

/// Split a request target into path + decoded query parameters
/// ("/run?mode=lazy&trace=1"). Exposed for tests.
void ParseTarget(const std::string& target, std::string* path,
                 std::map<std::string, std::string>* params);

}  // namespace lafp::serve

#endif  // LAFP_SERVE_HTTP_H_
