#ifndef LAFP_SERVE_SERVER_H_
#define LAFP_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_tracker.h"
#include "common/thread_pool.h"
#include "exec/backend.h"
#include "lazy/result_cache.h"
#include "serve/http.h"

namespace lafp::serve {

/// Query-service tuning. The defaults suit the smoke tests and the
/// quickstart; lafp_serve's flags map onto these one-to-one.
struct ServeOptions {
  /// TCP port to listen on; 0 = pick an ephemeral port (tests read it
  /// back through QueryService::port()).
  int port = 8080;
  /// Threads handling HTTP connections. This is also the hard ceiling on
  /// concurrently *parsing* requests; admitted queries then run inside
  /// these same threads against the shared engine pools.
  int worker_threads = 8;
  /// Admission cap: /run requests in flight at once. Requests over the
  /// cap are rejected immediately with 429, never queued — a loaded
  /// server stays responsive and the client owns the retry policy.
  int max_sessions = 8;
  /// Process budget carved across admitted sessions (bytes; 0 =
  /// unlimited). Each request executes under a child MemoryTracker of
  /// this budget, so one fat query OOMs cleanly instead of sinking the
  /// service.
  int64_t memory_budget_bytes = 0;
  /// Per-session budget (bytes); 0 = memory_budget_bytes / max_sessions
  /// (unlimited when the process budget is unlimited).
  int64_t session_budget_bytes = 0;
  /// Shared cross-query result cache capacity (bytes; 0 disables).
  size_t cache_bytes = lazy::ResultCache::kDefaultCapacityBytes;
  /// DAG-scheduler threads one session may use (its num_threads knob;
  /// the actual workers come from one shared pool).
  int session_threads = 4;
  /// Morsel parallelism per kernel (0 = off; workers shared).
  int intra_op_threads = 0;
  /// Backend when a request does not pass ?backend=.
  exec::BackendKind default_backend = exec::BackendKind::kPandas;
  /// Test seam: invoked after a /run request is admitted and registered
  /// with the disconnect monitor, before the program executes. The smoke
  /// tests use it to hold requests in flight deterministically (admission
  /// and cancellation behavior); never set in production.
  std::function<void(CancellationToken*)> run_started_hook;
};

/// The lafp_serve engine: a blocking-socket HTTP front end where each
/// request runs a PdScript program in an isolated lazy::Session wired to
/// shared process resources (DESIGN.md "Query service & multi-session
/// re-entrancy").
///
/// Endpoints:
///   POST /run[?mode=lafp|lazy|eager][&backend=pandas|modin|dask]
///            [&trace=1]          — body is the program; 200 = its output
///   GET  /metrics               — text scrape of the metrics registry
///   GET  /healthz               — liveness probe
///
/// Isolation per request: fresh Session + child MemoryTracker carved
/// from the process budget + private CancellationToken (tripped by the
/// disconnect monitor when the client goes away). Shared across
/// requests: the scheduler/backend thread pools (fixed worker count, no
/// per-session oversubscription) and the ResultCache, whose effective
/// capacity shrinks under admission pressure.
class QueryService {
 public:
  explicit QueryService(ServeOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Bind + listen + start the accept loop and handler pool. Fails on
  /// socket errors (port in use).
  Status Start();
  /// Stop accepting, drain handlers, join threads. Idempotent.
  void Stop();

  /// The bound port (after Start; useful with port = 0).
  int port() const { return port_; }
  const ServeOptions& options() const { return options_; }

  /// In-flight /run requests (tests assert admission behavior).
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Request dispatch, exposed for in-process tests: returns the response
  /// for an already-parsed request. `client_fd` (-1 = none) is watched
  /// for disconnect while the program runs.
  HttpResponse Dispatch(const HttpRequest& request, int client_fd);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  HttpResponse HandleRun(const HttpRequest& request, int client_fd);
  HttpResponse HandleMetrics() const;

  /// Admission slot guard; see HandleRun.
  class AdmissionSlot;
  /// Scale the shared cache's effective capacity to the current load.
  void UpdateCachePressure();

  /// Disconnect monitor: polls in-flight client sockets; a closed peer
  /// trips the request's CancellationToken so the scheduler abandons the
  /// round at its next node boundary. `disconnected` is set alongside —
  /// the token alone is ambiguous, because the scheduler also trips it
  /// to cooperatively stop co-running nodes after an engine failure.
  void MonitorLoop();
  void WatchClient(int fd, CancellationToken* token,
                   std::atomic<bool>* disconnected);
  void UnwatchClient(int fd);

  ServeOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};

  /// Process budget; parent of every request's child tracker.
  MemoryTracker tracker_;
  /// Shared engine pools (fixed size; sessions multiplex them).
  std::unique_ptr<ThreadPool> scheduler_pool_;
  std::unique_ptr<ThreadPool> backend_pool_;
  std::shared_ptr<lazy::ResultCache> cache_;

  std::atomic<int64_t> in_flight_{0};

  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> handler_pool_;

  std::thread monitor_thread_;
  std::mutex watch_mu_;
  struct WatchedClient {
    CancellationToken* token;
    std::atomic<bool>* disconnected;
  };
  std::map<int, WatchedClient> watched_;  // fd -> in-flight request
};

}  // namespace lafp::serve

#endif  // LAFP_SERVE_SERVER_H_
