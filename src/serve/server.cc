#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "lazy/session.h"
#include "optimizer/passes.h"
#include "script/analyze.h"

namespace lafp::serve {

namespace {

metrics::Registry* Metrics() { return metrics::Registry::Global(); }

/// Engine Status -> HTTP status. Client-caused conditions map to 4xx,
/// capacity to 429/507, everything else to 500 — a failing query must
/// produce a clean response, never a dropped connection.
int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalid:
    case StatusCode::kKeyError:
    case StatusCode::kTypeError:
    case StatusCode::kIndexError:
    case StatusCode::kParseError: return 400;
    case StatusCode::kNotImplemented: return 501;
    case StatusCode::kCancelled: return 499;
    case StatusCode::kOutOfMemory: return 507;
    default: return 500;
  }
}

}  // namespace

/// RAII admission: try_acquire at construction; admitted() tells whether
/// the slot was granted. Releases (and re-relaxes cache pressure) on
/// destruction.
class QueryService::AdmissionSlot {
 public:
  AdmissionSlot(QueryService* service) : service_(service) {
    int64_t now =
        service_->in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    admitted_ = now <= service_->options_.max_sessions;
    if (!admitted_) {
      service_->in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    service_->UpdateCachePressure();
  }

  ~AdmissionSlot() {
    if (!admitted_) return;
    service_->in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    service_->UpdateCachePressure();
  }

  bool admitted() const { return admitted_; }

 private:
  QueryService* service_;
  bool admitted_ = false;
};

QueryService::QueryService(ServeOptions options)
    : options_(std::move(options)),
      tracker_(options_.memory_budget_bytes) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_sessions < 1) options_.max_sessions = 1;
  if (options_.session_threads < 1) options_.session_threads = 1;
  if (options_.session_budget_bytes == 0 &&
      options_.memory_budget_bytes > 0) {
    options_.session_budget_bytes =
        options_.memory_budget_bytes / options_.max_sessions;
  }
  // One fixed-size worker set for all sessions: the scheduler pool runs
  // DAG nodes, the backend pool runs partition / kernel-morsel tasks.
  // Admitting more sessions multiplexes these pools instead of creating
  // per-session pools (N sessions x M threads would oversubscribe).
  scheduler_pool_ = std::make_unique<ThreadPool>(options_.session_threads);
  backend_pool_ = std::make_unique<ThreadPool>(
      std::max(options_.session_threads, options_.intra_op_threads));
  if (options_.cache_bytes > 0) {
    lazy::ResultCache::Options copts;
    copts.capacity_bytes = options_.cache_bytes;
    cache_ = std::make_shared<lazy::ResultCache>(copts);
  }
}

QueryService::~QueryService() { Stop(); }

Status QueryService::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    Status st = Status::IOError(std::string("bind failed: ") +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st = Status::IOError(std::string("listen failed: ") +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  handler_pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  monitor_thread_ = std::thread([this] { MonitorLoop(); });
  return Status::OK();
}

void QueryService::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Closing the listen socket unblocks accept(); handler_pool_'s
  // destructor drains queued connections before joining workers.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  handler_pool_.reset();
  if (monitor_thread_.joinable()) monitor_thread_.join();
}

void QueryService::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by Stop()
    }
    handler_pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void QueryService::HandleConnection(int fd) {
  HttpRequest request;
  Status read_status = ReadHttpRequest(fd, &request);
  HttpResponse response;
  if (!read_status.ok()) {
    response.status = read_status.IsInvalid() ? 400 : 408;
    response.body = read_status.ToString() + "\n";
  } else {
    response = Dispatch(request, fd);
  }
  (void)WriteHttpResponse(fd, response);
  ::close(fd);
}

HttpResponse QueryService::Dispatch(const HttpRequest& request,
                                    int client_fd) {
  static auto* requests = Metrics()->GetCounter("serve.requests");
  requests->Increment();
  if (request.path == "/healthz") {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  }
  if (request.path == "/metrics") {
    return HandleMetrics();
  }
  if (request.path == "/run") {
    if (request.method != "POST") {
      return HttpResponse{405, "text/plain; charset=utf-8",
                          "use POST /run\n"};
    }
    return HandleRun(request, client_fd);
  }
  return HttpResponse{404, "text/plain; charset=utf-8",
                      "unknown path " + request.path + "\n"};
}

void QueryService::UpdateCachePressure() {
  if (cache_ == nullptr) return;
  // Linear back-off: a full house halves the cache so live queries get
  // the memory; an idle service restores the full capacity. Eviction
  // happens inside set_effective_capacity.
  int64_t load = in_flight_.load(std::memory_order_relaxed);
  if (load > options_.max_sessions) load = options_.max_sessions;
  size_t cap = options_.cache_bytes;
  size_t shrink = static_cast<size_t>(
      (cap / 2) * static_cast<uint64_t>(load) /
      static_cast<uint64_t>(options_.max_sessions));
  cache_->set_effective_capacity(cap - shrink);
}

HttpResponse QueryService::HandleRun(const HttpRequest& request,
                                     int client_fd) {
  AdmissionSlot slot(this);
  if (!slot.admitted()) {
    static auto* rejected = Metrics()->GetCounter("serve.rejected");
    rejected->Increment();
    return HttpResponse{429, "text/plain; charset=utf-8",
                        "server at max_sessions capacity; retry later\n"};
  }
  static auto* in_flight_gauge = Metrics()->GetGauge("serve.in_flight");
  in_flight_gauge->Set(in_flight());

  // Per-request knobs.
  auto param = [&](const std::string& key) -> std::string {
    auto it = request.params.find(key);
    return it == request.params.end() ? "" : it->second;
  };
  exec::BackendKind backend = options_.default_backend;
  const std::string backend_param = param("backend");
  if (backend_param == "pandas") {
    backend = exec::BackendKind::kPandas;
  } else if (backend_param == "modin") {
    backend = exec::BackendKind::kModin;
  } else if (backend_param == "dask") {
    backend = exec::BackendKind::kDask;
  } else if (backend_param == "shard") {
    // Multi-process execution per request: the session forks its own
    // worker pool (count from LAFP_SHARDS, default 2) and reaps it when
    // the session ends.
    backend = exec::BackendKind::kShard;
  } else if (!backend_param.empty()) {
    return HttpResponse{400, "text/plain; charset=utf-8",
                        "unknown backend '" + backend_param + "'\n"};
  }
  const std::string mode = param("mode");
  if (!mode.empty() && mode != "lafp" && mode != "lazy" && mode != "eager") {
    return HttpResponse{400, "text/plain; charset=utf-8",
                        "unknown mode '" + mode + "'\n"};
  }
  const bool trace_requested = param("trace") == "1";

  // Isolation: child budget carved from the process tracker, private
  // cancellation token watched by the disconnect monitor, fresh session
  // over the shared pools and cache.
  MemoryTracker session_tracker(&tracker_, options_.session_budget_bytes);
  CancellationToken cancel;
  std::atomic<bool> disconnected{false};
  std::stringstream output;

  lazy::SessionOptions opts;
  opts.backend = backend;
  opts.tracker = &session_tracker;
  opts.output = &output;
  opts.mode = mode == "eager" ? lazy::ExecutionMode::kEager
                              : lazy::ExecutionMode::kLazy;
  opts.lazy_print = mode.empty() || mode == "lafp";
  opts.exec.num_threads = options_.session_threads;
  opts.exec.intra_op_threads = options_.intra_op_threads;
  opts.exec.trace = trace_requested;
  opts.exec.cancel = &cancel;
  opts.exec.scheduler_pool = scheduler_pool_.get();
  opts.backend_config.shared_pool = backend_pool_.get();
  if (cache_ != nullptr && opts.mode == lazy::ExecutionMode::kLazy) {
    opts.cache.enabled = true;
    opts.cache.cache = cache_;
  }

  lazy::Session session(opts);
  if (opts.mode == lazy::ExecutionMode::kLazy) {
    opt::InstallDefaultOptimizer(&session);
  }
  script::RunOptions run_opts;
  run_opts.analyze = opts.lazy_print;

  if (client_fd >= 0) WatchClient(client_fd, &cancel, &disconnected);
  if (options_.run_started_hook) options_.run_started_hook(&cancel);
  Status run_status = script::RunProgram(request.body, &session, run_opts);
  if (client_fd >= 0) UnwatchClient(client_fd);
  // Only rewrite failures the *client* caused: the monitor sets
  // `disconnected` when it trips the token, whereas an engine failure
  // (e.g. OOM) also trips the token to cooperatively stop co-running
  // nodes — that one must keep its own status. A disconnect noticed
  // after the program finished still counts as a completed run.
  if (!run_status.ok() &&
      disconnected.load(std::memory_order_acquire)) {
    run_status = Status::Cancelled("client disconnected: " +
                                   run_status.ToString());
  }

  HttpResponse response;
  response.status = HttpStatusFor(run_status);
  if (run_status.ok()) {
    response.body = output.str();
  } else {
    response.body = run_status.ToString() + "\n";
    static auto* errors = Metrics()->GetCounter("serve.errors");
    errors->Increment();
    if (run_status.IsCancelled()) {
      static auto* cancelled = Metrics()->GetCounter("serve.cancelled");
      cancelled->Increment();
    }
  }
  if (trace_requested && session.trace_root() != 0) {
    response.body += "\n--- trace ---\n";
    response.body +=
        trace::Tracer::Global()->RenderReportForRoot(session.trace_root());
  }
  return response;
}

HttpResponse QueryService::HandleMetrics() const {
  static auto* in_flight_gauge = Metrics()->GetGauge("serve.in_flight");
  in_flight_gauge->Set(in_flight());
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = Metrics()->RenderText();
  if (cache_ != nullptr) {
    response.body += "serve.cache.effective_capacity " +
                     std::to_string(cache_->effective_capacity()) + "\n";
  }
  return response;
}

void QueryService::WatchClient(int fd, CancellationToken* token,
                               std::atomic<bool>* disconnected) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watched_[fd] = WatchedClient{token, disconnected};
}

void QueryService::UnwatchClient(int fd) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watched_.erase(fd);
}

void QueryService::MonitorLoop() {
  // One thread polls every in-flight client socket. recv(MSG_PEEK |
  // MSG_DONTWAIT) == 0 is the unambiguous "peer closed" signal; pending
  // request bytes (> 0) and EWOULDBLOCK both mean the client is still
  // there. ~20 Hz keeps disconnect-to-cancel latency well under the
  // typical node execution time without measurable load.
  while (running_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      for (auto& [fd, client] : watched_) {
        char probe;
        ssize_t r = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
          client.disconnected->store(true, std::memory_order_release);
          client.token->Cancel();
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace lafp::serve
