#ifndef LAFP_SHARD_WORKER_H_
#define LAFP_SHARD_WORKER_H_

namespace lafp::shard {

/// Child-process entry point of the shard executor. Serves framed
/// requests (shard/wire.h) on `fd` until the coordinator sends kShutdown
/// or closes its end, then _exits — never returns.
///
/// The worker is deliberately single-threaded: the parent may fork from a
/// multi-threaded process, so the child confines itself to the post-fork
/// safe subset (glibc's fork handlers make malloc usable) and never
/// spawns threads of its own. Its first action is
/// FaultInjector::ResetForkedChild(), so coordinator-side fault specs
/// copied across fork cannot fire inside the worker.
[[noreturn]] void WorkerMain(int fd, int worker_index);

}  // namespace lafp::shard

#endif  // LAFP_SHARD_WORKER_H_
