#include "shard/shard_backend.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <deque>
#include <utility>

#include "common/fault.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "dataframe/ops.h"
#include "exec/agg_twophase.h"
#include "exec/partition.h"
#include "exec/spill.h"
#include "shard/worker.h"

namespace lafp::shard {

namespace {

using exec::BackendValue;
using exec::EagerValue;
using exec::OpDesc;
using exec::OpKind;

/// Upper bound on worker processes; LAFP_SHARDS beyond this clamps.
constexpr int kMaxShards = 64;

/// Coordinator-side handle to a sharded frame. Destruction queues the
/// remote frees (any scheduler thread may drop the last reference; the
/// actual protocol calls happen on the coordinator thread).
class ShardFrame : public exec::BackendFrame {
 public:
  ShardFrame(std::shared_ptr<Cluster> cluster,
             std::vector<ShardPartition> parts)
      : cluster_(std::move(cluster)), parts_(std::move(parts)) {
    for (const auto& p : parts_) rows_ += p.rows;
  }
  ~ShardFrame() override {
    for (const auto& p : parts_) {
      cluster_->QueueFree(p.worker, p.generation, p.handle);
    }
  }

  const std::vector<ShardPartition>& parts() const { return parts_; }
  uint64_t num_rows() const { return rows_; }

 private:
  std::shared_ptr<Cluster> cluster_;
  std::vector<ShardPartition> parts_;
  uint64_t rows_ = 0;
};

Result<const ShardFrame*> PartsOf(const BackendValue& value) {
  auto* wrapped = dynamic_cast<ShardFrame*>(value.frame.get());
  if (wrapped == nullptr) {
    return Status::Invalid("foreign frame handle passed to shard backend");
  }
  return wrapped;
}

Result<uint64_t> RowsOfOkReply(const Message& reply) {
  if (reply.type != MsgType::kOk) {
    return Status::IOError("shard: unexpected reply type " +
                           std::to_string(static_cast<uint32_t>(reply.type)));
  }
  WireReader r(reply.payload);
  uint64_t rows = 0;
  if (!r.U64(&rows)) return r.Error("ok reply");
  return rows;
}

Result<std::string_view> FrameBytesOfReply(const Message& reply) {
  if (reply.type != MsgType::kFrameData) {
    return Status::IOError("shard: expected frame data, got reply type " +
                           std::to_string(static_cast<uint32_t>(reply.type)));
  }
  return std::string_view(reply.payload);
}

metrics::Counter* CallCounter() {
  static auto* c = metrics::Registry::Global()->GetCounter("shard.calls");
  return c;
}

metrics::Counter* BytesCounter() {
  static auto* c =
      metrics::Registry::Global()->GetCounter("shard.bytes_shipped");
  return c;
}

metrics::Counter* RestartCounter() {
  static auto* c =
      metrics::Registry::Global()->GetCounter("shard.worker_restarts");
  return c;
}

metrics::Counter* RetryCounter() {
  static auto* c =
      metrics::Registry::Global()->GetCounter("shard.scan_retries");
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// Cluster

Result<std::unique_ptr<Cluster>> Cluster::Spawn(int num_workers) {
  if (num_workers < 1 || num_workers > kMaxShards) {
    return Status::Invalid("shard: worker count must be in [1, " +
                           std::to_string(kMaxShards) + "], got " +
                           std::to_string(num_workers));
  }
  std::unique_ptr<Cluster> cluster(new Cluster());
  cluster->workers_.resize(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    LAFP_RETURN_NOT_OK(cluster->SpawnWorker(w));
  }
  return cluster;
}

Cluster::~Cluster() {
  for (auto& worker : workers_) {
    if (!worker.alive) continue;
    // Workers hold only process-local state; SIGKILL is a clean teardown
    // and never leaves a query half-applied (results only exist once the
    // coordinator has the reply).
    ::kill(worker.pid, SIGKILL);
    ::close(worker.fd);
    ::waitpid(worker.pid, nullptr, 0);
    worker.alive = false;
  }
}

Status Cluster::SpawnWorker(int w) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return Status::IOError(std::string("shard: socketpair failed: ") +
                           std::strerror(errno));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return Status::IOError(std::string("shard: fork failed: ") +
                           std::strerror(errno));
  }
  if (pid == 0) {
    // Child: keep only our end of our socketpair; sibling descriptors
    // must close so a sibling's EOF-based shutdown is not held open.
    ::close(sv[0]);
    for (const auto& other : workers_) {
      if (other.fd >= 0) ::close(other.fd);
    }
    WorkerMain(sv[1], w);  // never returns
  }
  ::close(sv[1]);
  Worker& slot = workers_[static_cast<size_t>(w)];
  slot.pid = pid;
  slot.fd = sv[0];
  slot.alive = true;
  ++slot.generation;
  if (slot.generation > 1) RestartCounter()->Increment();
  return Status::OK();
}

void Cluster::MarkDead(int w) {
  Worker& worker = workers_[static_cast<size_t>(w)];
  if (!worker.alive) return;
  ::close(worker.fd);
  worker.fd = -1;
  // The stream is broken (or poisoned by a failed exchange); make death
  // synchronous so a later EnsureAlive starts from a known-clean slate.
  ::kill(worker.pid, SIGKILL);
  ::waitpid(worker.pid, nullptr, 0);
  worker.alive = false;
}

void Cluster::KillWorker(int w) { MarkDead(w); }

Status Cluster::EnsureAlive(int w) {
  if (workers_[static_cast<size_t>(w)].alive) return Status::OK();
  return SpawnWorker(w);
}

Status Cluster::Send(int w, MsgType type, std::string_view payload) {
  {
    // "shard.worker_kill" is a trigger, not an error: the target dies by
    // SIGKILL and the send below fails exactly like a real worker crash,
    // so recovery is exercised end to end.
    Status killed = FaultPoint("shard.worker_kill");
    if (!killed.ok()) KillWorker(w);
  }
  LAFP_RETURN_NOT_OK(FaultPoint("shard.send"));
  Worker& worker = workers_[static_cast<size_t>(w)];
  if (!worker.alive) {
    return Status::IOError("shard worker " + std::to_string(w) + " is down");
  }
  CallCounter()->Increment();
  BytesCounter()->Add(static_cast<int64_t>(payload.size()));
  Status s = SendMessage(worker.fd, type, payload);
  if (!s.ok()) MarkDead(w);
  return s;
}

Result<Message> Cluster::Recv(int w) {
  // An injected receive failure leaves the real reply buffered in the
  // socket; callers kill the worker afterwards so the stream can never
  // desync (the next query respawns it).
  LAFP_RETURN_NOT_OK(FaultPoint("shard.recv"));
  Worker& worker = workers_[static_cast<size_t>(w)];
  if (!worker.alive) {
    return Status::IOError("shard worker " + std::to_string(w) + " is down");
  }
  Result<Message> msg = RecvMessage(worker.fd);
  if (!msg.ok()) {
    MarkDead(w);
    return Status::IOError("shard worker " + std::to_string(w) +
                           " died mid-query: " + msg.status().message());
  }
  BytesCounter()->Add(static_cast<int64_t>(msg->payload.size()));
  return msg;
}

void Cluster::QueueFree(int worker, uint64_t generation, uint64_t handle) {
  std::lock_guard<std::mutex> lock(free_mu_);
  pending_frees_.push_back({worker, generation, handle});
}

void Cluster::FlushFrees() {
  std::vector<PendingFree> pending;
  {
    std::lock_guard<std::mutex> lock(free_mu_);
    pending.swap(pending_frees_);
  }
  if (pending.empty()) return;
  // Group by worker; drop frees whose worker incarnation is gone (the
  // frame died with the process). Raw SendMessage/RecvMessage on purpose:
  // background bookkeeping must not consume fault-injection budgets armed
  // for the query protocol.
  for (size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = workers_[w];
    WireWriter payload;
    uint32_t n = 0;
    for (const auto& f : pending) {
      if (f.worker != static_cast<int>(w)) continue;
      if (!worker.alive || f.generation != worker.generation) continue;
      payload.U64(f.handle);
      ++n;
    }
    if (n == 0) continue;
    WireWriter msg;
    msg.U32(n);
    msg.Raw(std::string(payload.Take()));
    if (!SendMessage(worker.fd, MsgType::kFreeFrames, msg.Take()).ok()) {
      MarkDead(static_cast<int>(w));
      continue;
    }
    if (!RecvMessage(worker.fd).ok()) MarkDead(static_cast<int>(w));
  }
}

// ---------------------------------------------------------------------------
// ShardBackend

ShardBackend::ShardBackend(MemoryTracker* tracker,
                           const exec::BackendConfig& config)
    : Backend(tracker, config) {}

ShardBackend::~ShardBackend() = default;

bool ShardBackend::SupportsOp(const OpDesc& desc) const {
  return desc.kind != OpKind::kPrint;
}

Status ShardBackend::EnsureCluster() {
  if (cluster_ != nullptr) return Status::OK();
  int n = config_.shards;
  if (n <= 0) n = 2;
  n = std::min(n, kMaxShards);
  LAFP_ASSIGN_OR_RETURN(std::unique_ptr<Cluster> cluster, Cluster::Spawn(n));
  cluster_ = std::move(cluster);
  return Status::OK();
}

Status ShardBackend::RunCalls(const std::vector<WorkerCall>& calls,
                              std::vector<Message>* replies,
                              std::vector<Status>* statuses) {
  const int nw = cluster_->num_workers();
  replies->assign(calls.size(), Message{});
  statuses->assign(calls.size(), Status::OK());
  std::vector<std::deque<size_t>> queues(static_cast<size_t>(nw));
  for (size_t i = 0; i < calls.size(); ++i) {
    queues[static_cast<size_t>(calls[i].worker)].push_back(i);
  }
  std::vector<ptrdiff_t> inflight(static_cast<size_t>(nw), -1);
  bool cancelled = false;
  while (true) {
    if (!cancelled && config_.cancel != nullptr && config_.cancel->cancelled()) {
      cancelled = true;  // stop launching; drain what is in flight
    }
    bool progressed = false;
    if (!cancelled) {
      for (int w = 0; w < nw; ++w) {
        auto& q = queues[static_cast<size_t>(w)];
        if (inflight[static_cast<size_t>(w)] >= 0 || q.empty()) continue;
        const size_t i = q.front();
        q.pop_front();
        trace::Span span("shard:send", "backend");
        if (span.active()) {
          span.AddArg("worker", w);
          span.AddArg("type", static_cast<int>(calls[i].type));
        }
        Status s = cluster_->Send(w, calls[i].type, calls[i].payload);
        if (!s.ok()) {
          (*statuses)[i] = std::move(s);
          cluster_->KillWorker(w);  // uniform: failed call = dead worker
        } else {
          inflight[static_cast<size_t>(w)] = static_cast<ptrdiff_t>(i);
        }
        progressed = true;
      }
    }
    for (int w = 0; w < nw; ++w) {
      if (inflight[static_cast<size_t>(w)] < 0) continue;
      const size_t i = static_cast<size_t>(inflight[static_cast<size_t>(w)]);
      inflight[static_cast<size_t>(w)] = -1;
      trace::Span span("shard:recv", "backend");
      if (span.active()) span.AddArg("worker", w);
      Result<Message> msg = cluster_->Recv(w);
      if (!msg.ok()) {
        (*statuses)[i] = msg.status();
        cluster_->KillWorker(w);
      } else if (msg->type == MsgType::kError) {
        // Worker-side failure: the worker is alive and its stream is
        // clean; only this call failed.
        (*statuses)[i] = DecodeErrorPayload(msg->payload);
      } else {
        (*replies)[i] = std::move(*msg);
      }
      progressed = true;
    }
    bool pending = false;
    for (int w = 0; w < nw; ++w) {
      if (inflight[static_cast<size_t>(w)] >= 0 ||
          (!cancelled && !queues[static_cast<size_t>(w)].empty())) {
        pending = true;
      }
    }
    if (!pending) break;
    if (!progressed && cancelled) break;
  }
  if (cancelled) {
    return Status::Cancelled("shard query cancelled by the coordinator");
  }
  return Status::OK();
}

Status ShardBackend::ValidateLive(
    const std::vector<ShardPartition>& parts) const {
  for (const auto& p : parts) {
    if (!cluster_->alive(p.worker) ||
        cluster_->generation(p.worker) != p.generation) {
      return Status::IOError(
          "shard partition lost: worker " + std::to_string(p.worker) +
          " restarted since the partition was created; rerun the query");
    }
  }
  return Status::OK();
}

Result<BackendValue> ShardBackend::Execute(
    const OpDesc& desc, const std::vector<BackendValue>& inputs) {
  std::lock_guard<std::mutex> lock(mu_);
  trace::Span span("shard:execute", "backend");
  if (span.active()) span.AddArg("op", desc.ToString());
  LAFP_RETURN_NOT_OK(EnsureCluster());
  cluster_->FlushFrees();
  switch (desc.kind) {
    case OpKind::kReadCsv:
    case OpKind::kReadLfc:
      return ExecuteScan(desc);
    case OpKind::kGroupByAgg:
      return ExecuteGroupBy(desc, inputs[0]);
    case OpKind::kReduce:
    case OpKind::kLen:
      return ExecuteReduce(desc, inputs[0]);
    case OpKind::kMerge:
      return ExecuteMerge(desc, inputs[0], inputs[1]);
    default:
      if (exec::IsMapOp(desc.kind)) return ExecuteMapOp(desc, inputs);
      return ExecuteViaGather(desc, inputs);
  }
}

Result<BackendValue> ShardBackend::ExecuteScan(const OpDesc& desc) {
  const int nw = cluster_->num_workers();
  for (int w = 0; w < nw; ++w) {
    LAFP_RETURN_NOT_OK(cluster_->EnsureAlive(w));
  }
  auto make_call = [&](int w) {
    WireWriter payload;
    EncodeOpDesc(desc, &payload);
    payload.U32(static_cast<uint32_t>(w));
    payload.U32(static_cast<uint32_t>(nw));
    payload.U64(config_.partition_rows);
    return WorkerCall{w, MsgType::kScan, payload.Take()};
  };
  std::vector<WorkerCall> calls;
  calls.reserve(static_cast<size_t>(nw));
  for (int w = 0; w < nw; ++w) calls.push_back(make_call(w));
  std::vector<Message> replies;
  std::vector<Status> statuses;
  LAFP_RETURN_NOT_OK(RunCalls(calls, &replies, &statuses));
  // Scans are idempotent (they reference only the on-disk source), so a
  // worker lost mid-scan gets respawned and retried exactly once — the
  // transparent half of the failure contract.
  for (size_t i = 0; i < calls.size(); ++i) {
    if (statuses[i].ok()) continue;
    const int w = calls[i].worker;
    RetryCounter()->Increment();
    Status respawn = cluster_->EnsureAlive(w);
    if (!respawn.ok()) return statuses[i];
    std::vector<Message> retry_replies;
    std::vector<Status> retry_statuses;
    LAFP_RETURN_NOT_OK(
        RunCalls({make_call(w)}, &retry_replies, &retry_statuses));
    if (!retry_statuses[0].ok()) return retry_statuses[0];
    replies[i] = std::move(retry_replies[0]);
    statuses[i] = Status::OK();
  }
  uint64_t total = 0;
  bool total_known = false;
  std::vector<ShardPartition> parts;
  std::vector<bool> seen;
  for (size_t i = 0; i < replies.size(); ++i) {
    const int w = calls[i].worker;
    if (replies[i].type != MsgType::kScanResult) {
      return Status::IOError("shard: scan reply had unexpected type");
    }
    WireReader r(replies[i].payload);
    uint64_t wtotal = 0;
    uint32_t nlocal = 0;
    if (!r.U64(&wtotal) || !r.U32(&nlocal)) return r.Error("scan result");
    if (!total_known) {
      total = wtotal;
      total_known = true;
      if (total == 0 || total > (1u << 22)) {
        return Status::IOError("shard: implausible scan partition count");
      }
      parts.resize(static_cast<size_t>(total));
      seen.assign(static_cast<size_t>(total), false);
    } else if (wtotal != total) {
      return Status::ExecutionError(
          "shard: workers disagreed on scan partition count");
    }
    for (uint32_t j = 0; j < nlocal; ++j) {
      uint64_t g = 0, handle = 0, rows = 0;
      if (!r.U64(&g) || !r.U64(&handle) || !r.U64(&rows)) {
        return r.Error("scan partition entry");
      }
      if (g >= total || seen[static_cast<size_t>(g)]) {
        return Status::ExecutionError(
            "shard: scan produced an inconsistent partition assignment");
      }
      seen[static_cast<size_t>(g)] = true;
      parts[static_cast<size_t>(g)] = {rows, w, cluster_->generation(w),
                                       handle};
    }
  }
  for (size_t g = 0; g < parts.size(); ++g) {
    if (!seen[g]) {
      return Status::ExecutionError("shard: scan partition " +
                                    std::to_string(g) + " was never claimed");
    }
  }
  return BackendValue::Frame(
      std::make_shared<ShardFrame>(cluster_, std::move(parts)));
}

Result<BackendValue> ShardBackend::ExecuteMapOp(
    const OpDesc& desc, const std::vector<BackendValue>& inputs) {
  LAFP_ASSIGN_OR_RETURN(const ShardFrame* primary, PartsOf(inputs[0]));
  LAFP_RETURN_NOT_OK(ValidateLive(primary->parts()));
  const ShardFrame* secondary = nullptr;
  df::Scalar runtime_scalar;
  bool second_is_scalar = false;
  if (inputs.size() > 1) {
    if (inputs[1].is_scalar) {
      second_is_scalar = true;
      runtime_scalar = inputs[1].scalar;
    } else {
      LAFP_ASSIGN_OR_RETURN(secondary, PartsOf(inputs[1]));
      const auto& pp = primary->parts();
      const auto& sp = secondary->parts();
      bool aligned = pp.size() == sp.size();
      for (size_t i = 0; aligned && i < pp.size(); ++i) {
        aligned = pp[i].worker == sp[i].worker &&
                  pp[i].generation == sp[i].generation;
      }
      if (!aligned) {
        // Misaligned partitioning (e.g. one side re-scattered after a
        // fallback): gather-and-run is the correctness path.
        return ExecuteViaGather(desc, inputs);
      }
      LAFP_RETURN_NOT_OK(ValidateLive(sp));
    }
  }
  const auto& pp = primary->parts();
  std::vector<WorkerCall> calls;
  std::vector<uint64_t> out_handles;
  calls.reserve(pp.size());
  for (size_t i = 0; i < pp.size(); ++i) {
    const uint64_t out = cluster_->NextHandle();
    out_handles.push_back(out);
    WireWriter payload;
    EncodeOpDesc(desc, &payload);
    payload.U64(out);
    uint32_t ninputs = 1;
    if (secondary != nullptr || second_is_scalar) ninputs = 2;
    payload.U32(ninputs);
    payload.U8(0);
    payload.U64(pp[i].handle);
    if (secondary != nullptr) {
      payload.U8(0);
      payload.U64(secondary->parts()[i].handle);
    } else if (second_is_scalar) {
      payload.U8(1);
      EncodeScalar(runtime_scalar, &payload);
    }
    calls.push_back({pp[i].worker, MsgType::kExecOp, payload.Take()});
  }
  std::vector<Message> replies;
  std::vector<Status> statuses;
  Status run = RunCalls(calls, &replies, &statuses);
  auto free_outputs = [&] {
    for (size_t i = 0; i < out_handles.size(); ++i) {
      cluster_->QueueFree(pp[i].worker, pp[i].generation, out_handles[i]);
    }
  };
  if (!run.ok()) {
    free_outputs();
    return run;
  }
  for (const Status& s : statuses) {
    if (!s.ok()) {
      free_outputs();
      return s;
    }
  }
  std::vector<ShardPartition> out_parts;
  out_parts.reserve(pp.size());
  for (size_t i = 0; i < pp.size(); ++i) {
    LAFP_ASSIGN_OR_RETURN(uint64_t rows, RowsOfOkReply(replies[i]));
    out_parts.push_back(
        {rows, pp[i].worker, pp[i].generation, out_handles[i]});
  }
  return BackendValue::Frame(
      std::make_shared<ShardFrame>(cluster_, std::move(out_parts)));
}

Result<BackendValue> ShardBackend::ExecuteGroupBy(const OpDesc& desc,
                                                  const BackendValue& input) {
  LAFP_ASSIGN_OR_RETURN(const ShardFrame* frame, PartsOf(input));
  exec::GroupByCombiner combiner(desc.columns, desc.aggs);
  if (!combiner.supported()) {
    // nunique does not decompose into partials; gather and run whole.
    return ExecuteViaGather(desc, {input});
  }
  LAFP_RETURN_NOT_OK(ValidateLive(frame->parts()));
  std::vector<WorkerCall> calls;
  for (const auto& p : frame->parts()) {
    WireWriter payload;
    payload.U64(p.handle);
    payload.U32(static_cast<uint32_t>(desc.columns.size()));
    for (const auto& k : desc.columns) payload.Str(k);
    payload.U32(static_cast<uint32_t>(desc.aggs.size()));
    for (const auto& a : desc.aggs) {
      payload.Str(a.column);
      payload.U8(static_cast<uint8_t>(a.func));
      payload.Str(a.out_name);
    }
    calls.push_back({p.worker, MsgType::kGroupByPartial, payload.Take()});
  }
  std::vector<Message> replies;
  std::vector<Status> statuses;
  LAFP_RETURN_NOT_OK(RunCalls(calls, &replies, &statuses));
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  // Fold partials in global partition order: first-appearance group order
  // (and therefore bytes) matches the single-process two-phase path.
  for (const auto& reply : replies) {
    LAFP_ASSIGN_OR_RETURN(std::string_view bytes, FrameBytesOfReply(reply));
    LAFP_ASSIGN_OR_RETURN(df::DataFrame partial,
                          exec::DeserializeFrame(bytes, tracker_));
    LAFP_RETURN_NOT_OK(combiner.AddPartial(std::move(partial)));
  }
  LAFP_ASSIGN_OR_RETURN(df::DataFrame result, combiner.Finish());
  return ScatterFrame(result);
}

Result<BackendValue> ShardBackend::ExecuteReduce(const OpDesc& desc,
                                                 const BackendValue& input) {
  LAFP_ASSIGN_OR_RETURN(const ShardFrame* frame, PartsOf(input));
  if (desc.kind == OpKind::kLen) {
    return BackendValue::FromScalar(
        df::Scalar::Int(static_cast<int64_t>(frame->num_rows())));
  }
  LAFP_RETURN_NOT_OK(ValidateLive(frame->parts()));
  LAFP_ASSIGN_OR_RETURN(std::vector<df::DataFrame> parts,
                        GatherParts(frame->parts()));
  exec::ReduceCombiner combiner(desc.agg_func);
  for (const auto& part : parts) {
    LAFP_RETURN_NOT_OK(combiner.AddPartition(part));
  }
  LAFP_ASSIGN_OR_RETURN(df::Scalar out, combiner.Finish());
  return BackendValue::FromScalar(std::move(out));
}

Result<BackendValue> ShardBackend::ExecuteMerge(const OpDesc& desc,
                                                const BackendValue& left,
                                                const BackendValue& right) {
  LAFP_ASSIGN_OR_RETURN(const ShardFrame* lframe, PartsOf(left));
  LAFP_RETURN_NOT_OK(ValidateLive(lframe->parts()));
  // Broadcast join: the right side is gathered whole and shipped once to
  // every worker holding a left partition.
  LAFP_ASSIGN_OR_RETURN(EagerValue right_full, MaterializeLocked(right));
  if (right_full.is_scalar) {
    return Status::Invalid("shard: merge right side must be a frame");
  }
  LAFP_ASSIGN_OR_RETURN(std::string right_bytes,
                        exec::SerializeFrame(right_full.frame));
  const auto& pp = lframe->parts();
  std::vector<int> bcast_workers;
  std::vector<uint64_t> bcast_handles(static_cast<size_t>(kMaxShards), 0);
  std::vector<WorkerCall> puts;
  for (const auto& p : pp) {
    if (bcast_handles[static_cast<size_t>(p.worker)] != 0) continue;
    const uint64_t handle = cluster_->NextHandle();
    bcast_handles[static_cast<size_t>(p.worker)] = handle;
    bcast_workers.push_back(p.worker);
    WireWriter payload;
    payload.U64(handle);
    payload.Raw(right_bytes);
    puts.push_back({p.worker, MsgType::kPutFrame, payload.Take()});
  }
  std::vector<Message> replies;
  std::vector<Status> statuses;
  auto free_broadcasts = [&] {
    for (int w : bcast_workers) {
      cluster_->QueueFree(w, cluster_->generation(w),
                          bcast_handles[static_cast<size_t>(w)]);
    }
  };
  Status run = RunCalls(puts, &replies, &statuses);
  if (!run.ok()) {
    free_broadcasts();
    return run;
  }
  for (const Status& s : statuses) {
    if (!s.ok()) {
      free_broadcasts();
      return s;
    }
  }
  std::vector<WorkerCall> joins;
  std::vector<uint64_t> out_handles;
  for (const auto& p : pp) {
    const uint64_t out = cluster_->NextHandle();
    out_handles.push_back(out);
    WireWriter payload;
    EncodeOpDesc(desc, &payload);
    payload.U64(out);
    payload.U32(2);
    payload.U8(0);
    payload.U64(p.handle);
    payload.U8(0);
    payload.U64(bcast_handles[static_cast<size_t>(p.worker)]);
    joins.push_back({p.worker, MsgType::kExecOp, payload.Take()});
  }
  run = RunCalls(joins, &replies, &statuses);
  free_broadcasts();  // the broadcast copies are dead weight either way
  auto free_outputs = [&] {
    for (size_t i = 0; i < out_handles.size(); ++i) {
      cluster_->QueueFree(pp[i].worker, pp[i].generation, out_handles[i]);
    }
  };
  if (!run.ok()) {
    free_outputs();
    return run;
  }
  for (const Status& s : statuses) {
    if (!s.ok()) {
      free_outputs();
      return s;
    }
  }
  std::vector<ShardPartition> out_parts;
  for (size_t i = 0; i < pp.size(); ++i) {
    LAFP_ASSIGN_OR_RETURN(uint64_t rows, RowsOfOkReply(replies[i]));
    out_parts.push_back(
        {rows, pp[i].worker, pp[i].generation, out_handles[i]});
  }
  return BackendValue::Frame(
      std::make_shared<ShardFrame>(cluster_, std::move(out_parts)));
}

Result<BackendValue> ShardBackend::ExecuteViaGather(
    const OpDesc& desc, const std::vector<BackendValue>& inputs) {
  // Ops outside the distributed vocabulary (sorts, dedup, concat, head,
  // describe, ...) gather to the coordinator and run the eager kernel,
  // preserving the engine's fallback semantics bit for bit.
  std::vector<EagerValue> eager_inputs;
  for (const auto& in : inputs) {
    LAFP_ASSIGN_OR_RETURN(EagerValue v, MaterializeLocked(in));
    eager_inputs.push_back(std::move(v));
  }
  LAFP_ASSIGN_OR_RETURN(EagerValue out,
                        exec::ExecuteEagerOp(desc, eager_inputs, tracker_));
  return FromEagerLocked(out);
}

Result<std::vector<df::DataFrame>> ShardBackend::GatherParts(
    const std::vector<ShardPartition>& parts) {
  std::vector<WorkerCall> calls;
  for (const auto& p : parts) {
    WireWriter payload;
    payload.U64(p.handle);
    calls.push_back({p.worker, MsgType::kGetFrame, payload.Take()});
  }
  std::vector<Message> replies;
  std::vector<Status> statuses;
  LAFP_RETURN_NOT_OK(RunCalls(calls, &replies, &statuses));
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  std::vector<df::DataFrame> frames;
  frames.reserve(parts.size());
  for (const auto& reply : replies) {
    LAFP_ASSIGN_OR_RETURN(std::string_view bytes, FrameBytesOfReply(reply));
    LAFP_ASSIGN_OR_RETURN(df::DataFrame frame,
                          exec::DeserializeFrame(bytes, tracker_));
    frames.push_back(std::move(frame));
  }
  return frames;
}

Result<EagerValue> ShardBackend::MaterializeLocked(const BackendValue& value) {
  if (value.is_scalar) return EagerValue::FromScalar(value.scalar);
  LAFP_ASSIGN_OR_RETURN(const ShardFrame* frame, PartsOf(value));
  LAFP_RETURN_NOT_OK(ValidateLive(frame->parts()));
  LAFP_ASSIGN_OR_RETURN(std::vector<df::DataFrame> frames,
                        GatherParts(frame->parts()));
  // Mirror PartitionedFrame::ToEager: a single partition passes through,
  // several concatenate — byte-identical to the other backends.
  if (frames.size() == 1) return EagerValue::Frame(std::move(frames[0]));
  LAFP_ASSIGN_OR_RETURN(df::DataFrame whole, df::Concat(frames));
  return EagerValue::Frame(std::move(whole));
}

Result<BackendValue> ShardBackend::ScatterFrame(const df::DataFrame& frame) {
  LAFP_ASSIGN_OR_RETURN(
      exec::PartitionedFrame chunks,
      exec::PartitionedFrame::FromEager(frame, config_.partition_rows));
  const int nw = cluster_->num_workers();
  const size_t np = chunks.num_partitions();
  std::vector<WorkerCall> calls;
  std::vector<ShardPartition> parts;
  for (size_t i = 0; i < np; ++i) {
    // Same placement rule as scans (global index mod N), so re-scattered
    // frames stay aligned with scanned frames of equal geometry.
    const int w = static_cast<int>(i % static_cast<size_t>(nw));
    LAFP_RETURN_NOT_OK(cluster_->EnsureAlive(w));
    LAFP_ASSIGN_OR_RETURN(df::DataFrame chunk, chunks.partition(i, tracker_));
    LAFP_ASSIGN_OR_RETURN(std::string bytes, exec::SerializeFrame(chunk));
    const uint64_t handle = cluster_->NextHandle();
    WireWriter payload;
    payload.U64(handle);
    payload.Raw(bytes);
    calls.push_back({w, MsgType::kPutFrame, payload.Take()});
    parts.push_back({chunk.num_rows(), w, cluster_->generation(w), handle});
  }
  std::vector<Message> replies;
  std::vector<Status> statuses;
  LAFP_RETURN_NOT_OK(RunCalls(calls, &replies, &statuses));
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    LAFP_ASSIGN_OR_RETURN(uint64_t rows, RowsOfOkReply(replies[i]));
    if (rows != parts[i].rows) {
      return Status::ExecutionError(
          "shard: scatter round-trip changed a partition's row count");
    }
  }
  return BackendValue::Frame(
      std::make_shared<ShardFrame>(cluster_, std::move(parts)));
}

Result<EagerValue> ShardBackend::Materialize(const BackendValue& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cluster_ == nullptr) {
    return Status::Invalid("shard: materialize before any execution");
  }
  return MaterializeLocked(value);
}

Result<BackendValue> ShardBackend::FromEager(const EagerValue& value) {
  std::lock_guard<std::mutex> lock(mu_);
  LAFP_RETURN_NOT_OK(EnsureCluster());
  return FromEagerLocked(value);
}

Result<BackendValue> ShardBackend::FromEagerLocked(const EagerValue& value) {
  if (value.is_scalar) return BackendValue::FromScalar(value.scalar);
  return ScatterFrame(value.frame);
}

int64_t ShardBackend::RowCount(const BackendValue& value) const {
  if (value.is_scalar) return 1;
  auto* wrapped = dynamic_cast<ShardFrame*>(value.frame.get());
  if (wrapped == nullptr) return -1;
  return static_cast<int64_t>(wrapped->num_rows());
}

}  // namespace lafp::shard
