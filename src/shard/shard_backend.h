#ifndef LAFP_SHARD_SHARD_BACKEND_H_
#define LAFP_SHARD_SHARD_BACKEND_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/backend.h"
#include "shard/wire.h"

namespace lafp::shard {

/// Coordinator-side handle to one fork()ed worker process pool connected
/// over AF_UNIX socketpairs. Single-threaded protocol: at most one
/// request is in flight per worker (the backend serializes queries, and
/// RunCalls pipelines across workers, never within one). A worker that
/// dies — killed by fault injection, crashed, or poisoned by a failed
/// exchange — is reaped, its generation bumps, and every partition handle
/// minted under the old generation becomes invalid.
class Cluster {
 public:
  static Result<std::unique_ptr<Cluster>> Spawn(int num_workers);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  bool alive(int w) const { return workers_[w].alive; }
  uint64_t generation(int w) const { return workers_[w].generation; }

  /// Respawn worker `w` if it is down (bumps its generation).
  Status EnsureAlive(int w);

  /// Sends one framed request. Fault points "shard.worker_kill" (SIGKILLs
  /// the target first, then proceeds so the failure takes the real dead-
  /// peer path) and "shard.send" (fails the send cleanly) hook here.
  Status Send(int w, MsgType type, std::string_view payload);

  /// Receives the matching reply; fault point "shard.recv". An injected
  /// or real receive failure leaves a reply potentially buffered in the
  /// stream, so callers must KillWorker on any Recv failure to resync.
  Result<Message> Recv(int w);

  /// SIGKILL + reap + close: deterministic, synchronous worker death.
  void KillWorker(int w);

  /// Next coordinator-assigned frame handle (distinct from the worker
  /// scan-handle space above kWorkerHandleBase).
  uint64_t NextHandle() { return next_handle_++; }

  /// Thread-safe: remote-frame releases arrive from whatever scheduler
  /// thread drops the last ShardFrame reference. The actual kFreeFrames
  /// calls happen on the coordinator thread via FlushFrees.
  void QueueFree(int worker, uint64_t generation, uint64_t handle);

  /// Drain queued frees (best-effort; coordinator thread only).
  void FlushFrees();

 private:
  Cluster() = default;

  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
    uint64_t generation = 0;
  };

  Status SpawnWorker(int w);
  void MarkDead(int w);

  std::vector<Worker> workers_;
  uint64_t next_handle_ = 1;

  struct PendingFree {
    int worker;
    uint64_t generation;
    uint64_t handle;
  };
  std::mutex free_mu_;
  std::vector<PendingFree> pending_frees_;
};

/// One partition of a sharded frame: `rows` cached for O(1) row counts,
/// the data resident on `worker` under `handle`. Partitions are ordered
/// by global index; `generation` pins the worker incarnation that holds
/// the data (a respawned worker starts empty).
struct ShardPartition {
  uint64_t rows = 0;
  int worker = 0;
  uint64_t generation = 0;
  uint64_t handle = 0;
};

/// Shared-nothing multi-process backend (paper §2.6 taken across process
/// boundaries): a coordinator forks N single-threaded workers, scans
/// partition across them (global chunk index mod N), map ops run where
/// their partition lives, group-bys run as distributed two-phase
/// aggregation (exec/agg_twophase.h) with partials shipped back and
/// folded in global partition order, and merges broadcast the right side.
/// Frames cross the socket in the hardened spill stream format
/// (exec/spill.h). Ops outside the distributed vocabulary gather to the
/// coordinator, run the eager kernel, and re-scatter — the same
/// transparent-fallback contract as the other backends, so results are
/// byte-identical to the single-process engines for any shard count.
class ShardBackend : public exec::Backend {
 public:
  ShardBackend(MemoryTracker* tracker, const exec::BackendConfig& config);
  ~ShardBackend() override;

  const char* name() const override { return "shard"; }
  bool preserves_row_order() const override { return true; }
  bool SupportsOp(const exec::OpDesc& desc) const override;

  Result<exec::BackendValue> Execute(
      const exec::OpDesc& desc,
      const std::vector<exec::BackendValue>& inputs) override;
  Result<exec::EagerValue> Materialize(
      const exec::BackendValue& value) override;
  Result<exec::BackendValue> FromEager(
      const exec::EagerValue& value) override;
  int64_t RowCount(const exec::BackendValue& value) const override;

 private:
  struct WorkerCall {
    int worker = 0;
    MsgType type = MsgType::kShutdown;
    std::string payload;
  };

  Status EnsureCluster();

  /// Runs `calls` with at most one request in flight per worker,
  /// pipelined across workers in waves. `statuses`/`replies` are
  /// positionally aligned with `calls`. Transport failures kill the
  /// worker (stream resync); worker-side kError replies decode to their
  /// original Status and leave the worker alive. Checks the external
  /// cancellation token between waves, draining in-flight replies before
  /// failing so the mailbox stays consistent.
  Status RunCalls(const std::vector<WorkerCall>& calls,
                  std::vector<Message>* replies,
                  std::vector<Status>* statuses);

  Result<exec::BackendValue> ExecuteScan(const exec::OpDesc& desc);
  Result<exec::BackendValue> ExecuteMapOp(
      const exec::OpDesc& desc,
      const std::vector<exec::BackendValue>& inputs);
  Result<exec::BackendValue> ExecuteGroupBy(const exec::OpDesc& desc,
                                            const exec::BackendValue& input);
  Result<exec::BackendValue> ExecuteReduce(const exec::OpDesc& desc,
                                           const exec::BackendValue& input);
  Result<exec::BackendValue> ExecuteMerge(const exec::OpDesc& desc,
                                          const exec::BackendValue& left,
                                          const exec::BackendValue& right);
  Result<exec::BackendValue> ExecuteViaGather(
      const exec::OpDesc& desc,
      const std::vector<exec::BackendValue>& inputs);

  Result<exec::EagerValue> MaterializeLocked(const exec::BackendValue& value);
  Result<exec::BackendValue> FromEagerLocked(const exec::EagerValue& value);
  Result<exec::BackendValue> ScatterFrame(const df::DataFrame& frame);

  /// All partitions must be on live workers of the current generation;
  /// otherwise the data died with a worker and the op fails cleanly.
  Status ValidateLive(const std::vector<ShardPartition>& parts) const;

  /// Gather a sharded frame's partitions to the coordinator, in global
  /// partition order.
  Result<std::vector<df::DataFrame>> GatherParts(
      const std::vector<ShardPartition>& parts);

  /// Serializes coordinator-side protocol state: Execute, Materialize and
  /// FromEager may race from scheduler workers, but the mailbox admits
  /// one query at a time.
  std::mutex mu_;
  std::shared_ptr<Cluster> cluster_;
};

}  // namespace lafp::shard

#endif  // LAFP_SHARD_SHARD_BACKEND_H_
