#include "shard/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/macros.h"

namespace lafp::shard {

namespace {

/// Fused chains are shallow by construction (one level in practice); the
/// clamp only exists so a crafted fragment cannot recurse the decoder.
constexpr uint32_t kMaxFusedDepth = 16;

Status SendAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("shard send failed: ") +
                             std::strerror(errno));
    }
    data += sent;
    n -= static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status RecvAll(int fd, char* data, size_t n) {
  while (n > 0) {
    ssize_t got = ::recv(fd, data, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("shard recv failed: ") +
                             std::strerror(errno));
    }
    if (got == 0) return Status::IOError("shard peer closed the connection");
    data += got;
    n -= static_cast<size_t>(got);
  }
  return Status::OK();
}

}  // namespace

Status SendMessage(int fd, MsgType type, std::string_view payload) {
  char header[16];
  const uint32_t magic = kFrameMagic;
  const uint32_t t = static_cast<uint32_t>(type);
  const uint64_t len = payload.size();
  if (len > kMaxMessageBytes) {
    return Status::Invalid("shard message exceeds the 1 GiB frame clamp");
  }
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &t, 4);
  std::memcpy(header + 8, &len, 8);
  LAFP_RETURN_NOT_OK(SendAll(fd, header, sizeof(header)));
  return SendAll(fd, payload.data(), payload.size());
}

Result<Message> RecvMessage(int fd) {
  char header[16];
  LAFP_RETURN_NOT_OK(RecvAll(fd, header, sizeof(header)));
  uint32_t magic = 0;
  uint32_t type = 0;
  uint64_t len = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&len, header + 8, 8);
  if (magic != kFrameMagic) {
    return Status::IOError("shard wire: bad frame magic (stream desync)");
  }
  if (len > kMaxMessageBytes) {
    return Status::IOError("shard wire: frame length exceeds 1 GiB clamp");
  }
  Message msg;
  msg.type = static_cast<MsgType>(type);
  msg.payload.resize(static_cast<size_t>(len));
  if (len > 0) LAFP_RETURN_NOT_OK(RecvAll(fd, msg.payload.data(), len));
  return msg;
}

bool WireReader::ReadPod(void* out, size_t n) {
  if (remaining() < n) return false;
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::U8(uint8_t* out) { return ReadPod(out, 1); }
bool WireReader::U32(uint32_t* out) { return ReadPod(out, 4); }
bool WireReader::U64(uint64_t* out) { return ReadPod(out, 8); }
bool WireReader::I64(int64_t* out) { return ReadPod(out, 8); }
bool WireReader::F64(double* out) { return ReadPod(out, 8); }

bool WireReader::Str(std::string* out) {
  uint32_t len = 0;
  if (!U32(&len)) return false;
  if (remaining() < len) return false;
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

void EncodeScalar(const df::Scalar& s, WireWriter* w) {
  switch (s.type()) {
    case df::DataType::kNull:
      w->U8(0);
      return;
    case df::DataType::kBool:
      w->U8(1);
      w->U8(s.bool_value() ? 1 : 0);
      return;
    case df::DataType::kInt64:
      w->U8(2);
      w->I64(s.int_value());
      return;
    case df::DataType::kDouble:
      w->U8(3);
      w->F64(s.double_value());
      return;
    case df::DataType::kTimestamp:
      w->U8(4);
      w->I64(s.int_value());
      return;
    case df::DataType::kString:
    case df::DataType::kCategory:
      w->U8(5);
      w->Str(s.string_value());
      return;
  }
  w->U8(0);
}

Status DecodeScalar(WireReader* r, df::Scalar* out) {
  uint8_t tag = 0;
  if (!r->U8(&tag)) return r->Error("scalar tag");
  switch (tag) {
    case 0:
      *out = df::Scalar::Null();
      return Status::OK();
    case 1: {
      uint8_t v = 0;
      if (!r->U8(&v)) return r->Error("bool scalar");
      *out = df::Scalar::Bool(v != 0);
      return Status::OK();
    }
    case 2: {
      int64_t v = 0;
      if (!r->I64(&v)) return r->Error("int scalar");
      *out = df::Scalar::Int(v);
      return Status::OK();
    }
    case 3: {
      double v = 0;
      if (!r->F64(&v)) return r->Error("double scalar");
      *out = df::Scalar::Double(v);
      return Status::OK();
    }
    case 4: {
      int64_t v = 0;
      if (!r->I64(&v)) return r->Error("timestamp scalar");
      *out = df::Scalar::Timestamp(v);
      return Status::OK();
    }
    case 5: {
      std::string v;
      if (!r->Str(&v)) return r->Error("string scalar");
      *out = df::Scalar::String(std::move(v));
      return Status::OK();
    }
    default:
      return Status::IOError("shard wire: unknown scalar tag " +
                             std::to_string(tag));
  }
}

namespace {

void EncodeStringVec(const std::vector<std::string>& v, WireWriter* w) {
  w->U32(static_cast<uint32_t>(v.size()));
  for (const auto& s : v) w->Str(s);
}

Status DecodeStringVec(WireReader* r, std::vector<std::string>* out,
                       const char* what) {
  uint32_t n = 0;
  if (!r->U32(&n)) return r->Error(what);
  // Each element costs at least its 4-byte length prefix; a count larger
  // than the bytes left is corrupt, not merely large.
  if (static_cast<uint64_t>(n) * 4 > r->remaining()) return r->Error(what);
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    if (!r->Str(&s)) return r->Error(what);
    out->push_back(std::move(s));
  }
  return Status::OK();
}

template <typename Enum>
Status CheckEnum(uint8_t raw, Enum max, const char* what, Enum* out) {
  if (raw > static_cast<uint8_t>(max)) {
    return Status::IOError(std::string("shard wire: out-of-range ") + what +
                           " " + std::to_string(raw));
  }
  *out = static_cast<Enum>(raw);
  return Status::OK();
}

void EncodeOpDescImpl(const exec::OpDesc& d, WireWriter* w) {
  w->U32(static_cast<uint32_t>(d.kind));
  w->Str(d.path);
  // CsvReadOptions.
  EncodeStringVec(d.csv_options.usecols, w);
  w->U32(static_cast<uint32_t>(d.csv_options.dtypes.size()));
  for (const auto& [name, type] : d.csv_options.dtypes) {
    w->Str(name);
    w->U8(static_cast<uint8_t>(type));
  }
  w->U8(static_cast<uint8_t>(d.csv_options.delimiter));
  w->U64(d.csv_options.nrows);
  w->U64(d.csv_options.infer_rows);
  // LfcReadOptions.
  EncodeStringVec(d.lfc_options.usecols, w);
  w->U64(d.lfc_options.nrows);
  w->U32(static_cast<uint32_t>(d.lfc_options.prune.size()));
  for (const auto& p : d.lfc_options.prune) {
    w->Str(p.column);
    w->U8(static_cast<uint8_t>(p.op));
    EncodeScalar(p.scalar, w);
  }
  w->U8(d.lfc_options.prune_enabled ? 1 : 0);
  // Generic operands.
  EncodeStringVec(d.columns, w);
  w->Str(d.column);
  w->U8(static_cast<uint8_t>(d.compare_op));
  w->U8(static_cast<uint8_t>(d.arith_op));
  w->U8(d.scalar_on_left ? 1 : 0);
  w->U8(d.has_scalar ? 1 : 0);
  EncodeScalar(d.scalar, w);
  w->U32(static_cast<uint32_t>(d.aggs.size()));
  for (const auto& a : d.aggs) {
    w->Str(a.column);
    w->U8(static_cast<uint8_t>(a.func));
    w->Str(a.out_name);
  }
  w->U8(static_cast<uint8_t>(d.agg_func));
  w->U32(static_cast<uint32_t>(d.ascending.size()));
  for (bool b : d.ascending) w->U8(b ? 1 : 0);
  w->U8(static_cast<uint8_t>(d.join_type));
  w->U8(static_cast<uint8_t>(d.dtype));
  w->U8(static_cast<uint8_t>(d.dt_field));
  w->U64(static_cast<uint64_t>(d.n));
  w->U32(static_cast<uint32_t>(d.rename.size()));
  for (const auto& [from, to] : d.rename) {
    w->Str(from);
    w->Str(to);
  }
  w->Str(d.str_arg);
  w->U32(static_cast<uint32_t>(d.scalar_list.size()));
  for (const auto& s : d.scalar_list) EncodeScalar(s, w);
  w->I64(d.digits);
  w->U32(static_cast<uint32_t>(d.fused.size()));
  for (const auto& f : d.fused) EncodeOpDescImpl(f, w);
}

Status DecodeOpDescImpl(WireReader* r, exec::OpDesc* out, uint32_t depth) {
  if (depth > kMaxFusedDepth) {
    return Status::IOError("shard wire: fused op chain nests too deeply");
  }
  exec::OpDesc d;
  uint32_t kind = 0;
  if (!r->U32(&kind)) return r->Error("op kind");
  if (kind > static_cast<uint32_t>(exec::OpKind::kFusedMap)) {
    return Status::IOError("shard wire: unknown op kind " +
                           std::to_string(kind));
  }
  d.kind = static_cast<exec::OpKind>(kind);
  if (!r->Str(&d.path)) return r->Error("op path");
  // CsvReadOptions.
  LAFP_RETURN_NOT_OK(DecodeStringVec(r, &d.csv_options.usecols, "csv usecols"));
  uint32_t ndtypes = 0;
  if (!r->U32(&ndtypes)) return r->Error("csv dtypes");
  if (static_cast<uint64_t>(ndtypes) * 5 > r->remaining()) {
    return r->Error("csv dtypes");
  }
  for (uint32_t i = 0; i < ndtypes; ++i) {
    std::string name;
    uint8_t type = 0;
    if (!r->Str(&name) || !r->U8(&type)) return r->Error("csv dtype entry");
    df::DataType dt;
    LAFP_RETURN_NOT_OK(CheckEnum(type, df::DataType::kCategory, "dtype", &dt));
    d.csv_options.dtypes[std::move(name)] = dt;
  }
  uint8_t delim = 0;
  if (!r->U8(&delim)) return r->Error("csv delimiter");
  d.csv_options.delimiter = static_cast<char>(delim);
  uint64_t nrows = 0, infer_rows = 0;
  if (!r->U64(&nrows) || !r->U64(&infer_rows)) return r->Error("csv rows");
  d.csv_options.nrows = static_cast<size_t>(nrows);
  d.csv_options.infer_rows = static_cast<size_t>(infer_rows);
  // LfcReadOptions.
  LAFP_RETURN_NOT_OK(DecodeStringVec(r, &d.lfc_options.usecols, "lfc usecols"));
  if (!r->U64(&nrows)) return r->Error("lfc rows");
  d.lfc_options.nrows = static_cast<size_t>(nrows);
  uint32_t nprune = 0;
  if (!r->U32(&nprune)) return r->Error("lfc prune");
  if (static_cast<uint64_t>(nprune) * 6 > r->remaining()) {
    return r->Error("lfc prune");
  }
  for (uint32_t i = 0; i < nprune; ++i) {
    io::LfcPredicate p;
    uint8_t op = 0;
    if (!r->Str(&p.column) || !r->U8(&op)) return r->Error("lfc predicate");
    LAFP_RETURN_NOT_OK(CheckEnum(op, df::CompareOp::kGe, "compare op", &p.op));
    LAFP_RETURN_NOT_OK(DecodeScalar(r, &p.scalar));
    d.lfc_options.prune.push_back(std::move(p));
  }
  uint8_t flag = 0;
  if (!r->U8(&flag)) return r->Error("lfc prune flag");
  d.lfc_options.prune_enabled = flag != 0;
  // Generic operands.
  LAFP_RETURN_NOT_OK(DecodeStringVec(r, &d.columns, "op columns"));
  if (!r->Str(&d.column)) return r->Error("op column");
  uint8_t cmp = 0, arith = 0, on_left = 0, has_scalar = 0;
  if (!r->U8(&cmp) || !r->U8(&arith) || !r->U8(&on_left) ||
      !r->U8(&has_scalar)) {
    return r->Error("op flags");
  }
  LAFP_RETURN_NOT_OK(
      CheckEnum(cmp, df::CompareOp::kGe, "compare op", &d.compare_op));
  LAFP_RETURN_NOT_OK(
      CheckEnum(arith, df::ArithOp::kMod, "arith op", &d.arith_op));
  d.scalar_on_left = on_left != 0;
  d.has_scalar = has_scalar != 0;
  LAFP_RETURN_NOT_OK(DecodeScalar(r, &d.scalar));
  uint32_t naggs = 0;
  if (!r->U32(&naggs)) return r->Error("op aggs");
  if (static_cast<uint64_t>(naggs) * 9 > r->remaining()) {
    return r->Error("op aggs");
  }
  for (uint32_t i = 0; i < naggs; ++i) {
    df::AggSpec a;
    uint8_t func = 0;
    if (!r->Str(&a.column) || !r->U8(&func) || !r->Str(&a.out_name)) {
      return r->Error("agg spec");
    }
    LAFP_RETURN_NOT_OK(
        CheckEnum(func, df::AggFunc::kNunique, "agg func", &a.func));
    d.aggs.push_back(std::move(a));
  }
  uint8_t agg_func = 0;
  if (!r->U8(&agg_func)) return r->Error("op agg func");
  LAFP_RETURN_NOT_OK(
      CheckEnum(agg_func, df::AggFunc::kNunique, "agg func", &d.agg_func));
  uint32_t nasc = 0;
  if (!r->U32(&nasc)) return r->Error("op ascending");
  if (nasc > r->remaining()) return r->Error("op ascending");
  for (uint32_t i = 0; i < nasc; ++i) {
    if (!r->U8(&flag)) return r->Error("op ascending");
    d.ascending.push_back(flag != 0);
  }
  uint8_t join = 0, dtype = 0, dt_field = 0;
  if (!r->U8(&join) || !r->U8(&dtype) || !r->U8(&dt_field)) {
    return r->Error("op enums");
  }
  LAFP_RETURN_NOT_OK(
      CheckEnum(join, df::JoinType::kLeft, "join type", &d.join_type));
  LAFP_RETURN_NOT_OK(
      CheckEnum(dtype, df::DataType::kCategory, "dtype", &d.dtype));
  LAFP_RETURN_NOT_OK(
      CheckEnum(dt_field, df::DtField::kDay, "dt field", &d.dt_field));
  uint64_t head_n = 0;
  if (!r->U64(&head_n)) return r->Error("op n");
  d.n = static_cast<size_t>(head_n);
  uint32_t nrename = 0;
  if (!r->U32(&nrename)) return r->Error("op rename");
  if (static_cast<uint64_t>(nrename) * 8 > r->remaining()) {
    return r->Error("op rename");
  }
  for (uint32_t i = 0; i < nrename; ++i) {
    std::string from, to;
    if (!r->Str(&from) || !r->Str(&to)) return r->Error("rename entry");
    d.rename[std::move(from)] = std::move(to);
  }
  if (!r->Str(&d.str_arg)) return r->Error("op str arg");
  uint32_t nscalars = 0;
  if (!r->U32(&nscalars)) return r->Error("op scalar list");
  if (nscalars > r->remaining()) return r->Error("op scalar list");
  for (uint32_t i = 0; i < nscalars; ++i) {
    df::Scalar s;
    LAFP_RETURN_NOT_OK(DecodeScalar(r, &s));
    d.scalar_list.push_back(std::move(s));
  }
  int64_t digits = 0;
  if (!r->I64(&digits)) return r->Error("op digits");
  d.digits = static_cast<int>(digits);
  uint32_t nfused = 0;
  if (!r->U32(&nfused)) return r->Error("op fused");
  if (nfused > r->remaining()) return r->Error("op fused");
  for (uint32_t i = 0; i < nfused; ++i) {
    exec::OpDesc f;
    LAFP_RETURN_NOT_OK(DecodeOpDescImpl(r, &f, depth + 1));
    d.fused.push_back(std::move(f));
  }
  *out = std::move(d);
  return Status::OK();
}

}  // namespace

void EncodeOpDesc(const exec::OpDesc& desc, WireWriter* w) {
  EncodeOpDescImpl(desc, w);
}

Status DecodeOpDesc(WireReader* r, exec::OpDesc* out) {
  return DecodeOpDescImpl(r, out, 0);
}

std::string EncodeErrorPayload(const Status& status) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(status.code()));
  w.Str(status.message());
  return w.Take();
}

Status DecodeErrorPayload(std::string_view payload) {
  WireReader r(payload);
  uint32_t code = 0;
  std::string message;
  if (!r.U32(&code) || !r.Str(&message)) {
    return Status::IOError("shard wire: malformed error reply");
  }
  if (code > static_cast<uint32_t>(StatusCode::kCancelled) || code == 0) {
    code = static_cast<uint32_t>(StatusCode::kExecutionError);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace lafp::shard
