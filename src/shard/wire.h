#ifndef LAFP_SHARD_WIRE_H_
#define LAFP_SHARD_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "dataframe/types.h"
#include "exec/op.h"

/// Coordinator <-> worker wire protocol for the shared-nothing shard
/// executor (src/shard/). Everything on the socket is a framed message:
///
///   u32 magic ("LFSH") | u32 type | u64 payload_len | payload bytes
///
/// Payloads are little-endian structs built with WireWriter and decoded
/// with the bounds-checked WireReader; dataframes travel as the spill
/// stream format (exec/spill.h, SerializeFrame/DeserializeFrame) so the
/// exchange path reuses the hardened length-validated decoder.
///
/// Request payloads (coordinator -> worker):
///   kScan:           OpDesc | u32 worker_index | u32 num_workers
///                    | u64 partition_rows
///   kExecOp:         OpDesc | u64 out_handle | u32 ninputs
///                    | per input: u8 tag (0 = u64 handle, 1 = Scalar,
///                      2 = u64 len + frame bytes)
///   kGroupByPartial: u64 handle | u32 nkeys x str
///                    | u32 naggs x (str column, u8 func, str out_name)
///   kPutFrame:       u64 handle | frame bytes (rest of payload)
///   kGetFrame:       u64 handle
///   kFreeFrames:     u32 n x u64 handle
///   kShutdown:       (empty; the worker _exits without replying)
///
/// Reply payloads (worker -> coordinator); every request except
/// kShutdown gets exactly one reply:
///   kOk:         u64 rows (of the stored/affected frame; 0 for frees)
///   kFrameData:  frame bytes
///   kScanResult: u64 total_partitions | u32 nlocal
///                | nlocal x (u64 global_index, u64 handle, u64 rows)
///   kError:      u32 status code | str message
namespace lafp::shard {

/// Frame header magic: "LFSH".
constexpr uint32_t kFrameMagic = 0x4846534cu;

/// Per-message payload clamp. A crafted or corrupted length header must
/// not drive a multi-gigabyte allocation before any payload byte is read.
constexpr uint64_t kMaxMessageBytes = 1ull << 30;  // 1 GiB

/// Handles the worker assigns locally during scans live above this base;
/// coordinator-assigned handles count up from 1, so the two spaces can
/// never collide within one worker's frame table.
constexpr uint64_t kWorkerHandleBase = 1ull << 62;

enum class MsgType : uint32_t {
  // Requests.
  kScan = 1,
  kExecOp = 2,
  kGroupByPartial = 3,
  kPutFrame = 4,
  kGetFrame = 5,
  kFreeFrames = 6,
  kShutdown = 7,
  // Replies.
  kOk = 100,
  kFrameData = 101,
  kScanResult = 102,
  kError = 103,
};

struct Message {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Writes one framed message to `fd` (EINTR-safe, MSG_NOSIGNAL — a dead
/// peer surfaces as a clean Status, never SIGPIPE).
Status SendMessage(int fd, MsgType type, std::string_view payload);

/// Reads one framed message from `fd`. EOF or a malformed header (bad
/// magic, payload above kMaxMessageBytes) is a clean IOError.
Result<Message> RecvMessage(int fd);

/// Little-endian payload builder.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendPod(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendPod(&v, sizeof(v)); }
  void I64(int64_t v) { AppendPod(&v, sizeof(v)); }
  void F64(double v) { AppendPod(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void Raw(std::string_view bytes) { buf_.append(bytes.data(), bytes.size()); }

  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void AppendPod(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked payload decoder: every getter returns false instead of
/// reading past the end, so a truncated or hostile payload can never walk
/// off the buffer. `Error(what)` converts exhaustion into a clean Status.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* out);
  bool U32(uint32_t* out);
  bool U64(uint64_t* out);
  bool I64(int64_t* out);
  bool F64(double* out);
  bool Str(std::string* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }
  /// The unread tail (used for trailing frame-bytes payloads).
  std::string_view Rest() const { return data_.substr(pos_); }
  void SkipRest() { pos_ = data_.size(); }

  Status Error(const char* what) const {
    return Status::IOError(std::string("shard wire: truncated ") + what);
  }

 private:
  bool ReadPod(void* out, size_t n);
  std::string_view data_;
  size_t pos_ = 0;
};

/// Scalar codec: u8 type tag + value. Category scalars travel as strings
/// (the scalar layer has no standalone dictionary to preserve).
void EncodeScalar(const df::Scalar& s, WireWriter* w);
Status DecodeScalar(WireReader* r, df::Scalar* out);

/// Plan-fragment codec: a byte-exact, reversible walk of every OpDesc
/// field (including the recursive `fused` chain, depth-clamped). Decode
/// range-checks every enum so a corrupt fragment yields a clean Status
/// instead of an out-of-range enum reaching the kernels.
void EncodeOpDesc(const exec::OpDesc& desc, WireWriter* w);
Status DecodeOpDesc(WireReader* r, exec::OpDesc* out);

/// kError payload codec. Unknown status codes decode as kExecutionError.
std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::string_view payload);

}  // namespace lafp::shard

#endif  // LAFP_SHARD_WIRE_H_
