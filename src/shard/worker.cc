#include "shard/worker.h"

#include <unistd.h>

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/macros.h"
#include "common/memory_tracker.h"
#include "exec/agg_twophase.h"
#include "exec/eager_ops.h"
#include "exec/spill.h"
#include "io/columnar.h"
#include "io/csv.h"
#include "shard/wire.h"

namespace lafp::shard {

namespace {

/// Per-worker process state: the frame table maps handles to resident
/// dataframes. Coordinator-assigned handles count up from 1; handles the
/// worker mints during scans live above kWorkerHandleBase.
struct WorkerState {
  int worker_index = 0;
  MemoryTracker tracker{0};  // workers budget independently of the parent
  std::unordered_map<uint64_t, df::DataFrame> frames;
  uint64_t next_scan_handle = kWorkerHandleBase;
};

Result<df::DataFrame> LookupFrame(WorkerState* st, uint64_t handle) {
  auto it = st->frames.find(handle);
  if (it == st->frames.end()) {
    return Status::KeyError("shard worker: unknown frame handle " +
                            std::to_string(handle));
  }
  return it->second;
}

struct LocalPartition {
  uint64_t global_index = 0;
  uint64_t handle = 0;
  uint64_t rows = 0;
};

/// Scan request: every worker walks the same chunk sequence (the same
/// geometry the Modin backend produces) and keeps the chunks whose global
/// index hashes to it (idx % num_workers == worker_index), so the union
/// across workers is exactly the single-process partitioning. CSV chunks
/// are parsed by every worker (the text format has no random access); LFC
/// chunks are only decoded by their owner.
Result<Message> HandleScan(WorkerState* st, const Message& req) {
  WireReader r(req.payload);
  exec::OpDesc desc;
  LAFP_RETURN_NOT_OK(DecodeOpDesc(&r, &desc));
  uint32_t worker_index = 0, num_workers = 0;
  uint64_t partition_rows = 0;
  if (!r.U32(&worker_index) || !r.U32(&num_workers) ||
      !r.U64(&partition_rows)) {
    return r.Error("scan request");
  }
  if (num_workers == 0 || worker_index >= num_workers ||
      partition_rows == 0) {
    return Status::Invalid("shard worker: malformed scan geometry");
  }
  const bool mine_first = worker_index == 0;
  std::vector<LocalPartition> locals;
  uint64_t total = 0;
  auto keep = [&](df::DataFrame frame) {
    LocalPartition p;
    p.global_index = total;
    p.handle = st->next_scan_handle++;
    p.rows = frame.num_rows();
    st->frames[p.handle] = std::move(frame);
    locals.push_back(p);
  };
  if (desc.kind == exec::OpKind::kReadCsv) {
    LAFP_ASSIGN_OR_RETURN(
        auto reader,
        io::CsvChunkReader::Open(desc.path, desc.csv_options, &st->tracker));
    while (true) {
      LAFP_ASSIGN_OR_RETURN(
          auto chunk, reader->NextChunk(static_cast<size_t>(partition_rows)));
      if (!chunk.has_value()) break;
      if (total % num_workers == worker_index) keep(std::move(*chunk));
      ++total;
    }
    if (total == 0) {
      // Empty source: mirror Modin's single empty partition, owned by
      // worker 0; every worker still reports total == 1.
      total = 1;
      if (mine_first) {
        LAFP_ASSIGN_OR_RETURN(
            df::DataFrame empty,
            io::ReadCsv(desc.path, desc.csv_options, &st->tracker));
        keep(std::move(empty));
        locals.back().global_index = 0;
      }
    }
  } else if (desc.kind == exec::OpKind::kReadLfc) {
    LAFP_ASSIGN_OR_RETURN(auto reader,
                          io::LfcReader::Open(desc.path, &st->tracker));
    const auto& o = desc.lfc_options;
    LAFP_ASSIGN_OR_RETURN(std::vector<size_t> sel,
                          reader->SelectColumns(o.usecols));
    const bool pruning = o.prune_enabled && !o.prune.empty();
    uint64_t remaining =
        o.nrows == 0 ? std::numeric_limits<uint64_t>::max() : o.nrows;
    for (size_t chunk = 0; chunk < reader->num_chunks(); ++chunk) {
      if (remaining == 0) break;
      const uint64_t take =
          std::min<uint64_t>(reader->chunk_rows(chunk), remaining);
      remaining -= take;
      if (pruning && !reader->ChunkMayMatch(chunk, o.prune)) continue;
      if (total % num_workers == worker_index) {
        LAFP_ASSIGN_OR_RETURN(
            df::DataFrame part,
            reader->ReadChunk(chunk, sel, static_cast<size_t>(take)));
        keep(std::move(part));
      }
      ++total;
    }
    if (total == 0) {
      total = 1;
      if (mine_first) {
        LAFP_ASSIGN_OR_RETURN(df::DataFrame empty, reader->EmptyFrame(sel));
        keep(std::move(empty));
        locals.back().global_index = 0;
      }
    }
  } else {
    return Status::Invalid("shard worker: scan request for non-scan op");
  }
  WireWriter w;
  w.U64(total);
  w.U32(static_cast<uint32_t>(locals.size()));
  for (const auto& p : locals) {
    w.U64(p.global_index);
    w.U64(p.handle);
    w.U64(p.rows);
  }
  return Message{MsgType::kScanResult, w.Take()};
}

Result<Message> HandleExecOp(WorkerState* st, const Message& req) {
  WireReader r(req.payload);
  exec::OpDesc desc;
  LAFP_RETURN_NOT_OK(DecodeOpDesc(&r, &desc));
  uint64_t out_handle = 0;
  uint32_t ninputs = 0;
  if (!r.U64(&out_handle) || !r.U32(&ninputs)) return r.Error("exec header");
  if (ninputs > 64) {
    return Status::Invalid("shard worker: too many op inputs");
  }
  std::vector<exec::EagerValue> inputs;
  for (uint32_t i = 0; i < ninputs; ++i) {
    uint8_t tag = 0;
    if (!r.U8(&tag)) return r.Error("input tag");
    if (tag == 0) {
      uint64_t handle = 0;
      if (!r.U64(&handle)) return r.Error("input handle");
      LAFP_ASSIGN_OR_RETURN(df::DataFrame frame, LookupFrame(st, handle));
      inputs.push_back(exec::EagerValue::Frame(std::move(frame)));
    } else if (tag == 1) {
      df::Scalar s;
      LAFP_RETURN_NOT_OK(DecodeScalar(&r, &s));
      inputs.push_back(exec::EagerValue::FromScalar(std::move(s)));
    } else if (tag == 2) {
      std::string bytes;
      if (!r.Str(&bytes)) return r.Error("inline frame");
      LAFP_ASSIGN_OR_RETURN(df::DataFrame frame,
                            exec::DeserializeFrame(bytes, &st->tracker));
      inputs.push_back(exec::EagerValue::Frame(std::move(frame)));
    } else {
      return Status::Invalid("shard worker: unknown input tag");
    }
  }
  LAFP_ASSIGN_OR_RETURN(exec::EagerValue out,
                        exec::ExecuteEagerOp(desc, inputs, &st->tracker));
  if (out.is_scalar) {
    // The coordinator runs reductions itself; a scalar here means the
    // plan fragment was mis-routed.
    return Status::Invalid("shard worker: op produced a scalar");
  }
  const uint64_t rows = out.frame.num_rows();
  st->frames[out_handle] = std::move(out.frame);
  WireWriter w;
  w.U64(rows);
  return Message{MsgType::kOk, w.Take()};
}

Result<Message> HandleGroupByPartial(WorkerState* st, const Message& req) {
  WireReader r(req.payload);
  uint64_t handle = 0;
  if (!r.U64(&handle)) return r.Error("groupby handle");
  std::vector<std::string> keys;
  uint32_t nkeys = 0;
  if (!r.U32(&nkeys)) return r.Error("groupby keys");
  if (static_cast<uint64_t>(nkeys) * 4 > r.remaining()) {
    return r.Error("groupby keys");
  }
  for (uint32_t i = 0; i < nkeys; ++i) {
    std::string k;
    if (!r.Str(&k)) return r.Error("groupby key");
    keys.push_back(std::move(k));
  }
  std::vector<df::AggSpec> aggs;
  uint32_t naggs = 0;
  if (!r.U32(&naggs)) return r.Error("groupby aggs");
  if (static_cast<uint64_t>(naggs) * 9 > r.remaining()) {
    return r.Error("groupby aggs");
  }
  for (uint32_t i = 0; i < naggs; ++i) {
    df::AggSpec a;
    uint8_t func = 0;
    if (!r.Str(&a.column) || !r.U8(&func) || !r.Str(&a.out_name)) {
      return r.Error("agg spec");
    }
    if (func > static_cast<uint8_t>(df::AggFunc::kNunique)) {
      return Status::Invalid("shard worker: bad agg func");
    }
    a.func = static_cast<df::AggFunc>(func);
    aggs.push_back(std::move(a));
  }
  LAFP_ASSIGN_OR_RETURN(df::DataFrame frame, LookupFrame(st, handle));
  exec::GroupByCombiner combiner(std::move(keys), std::move(aggs));
  if (!combiner.supported()) {
    return Status::Invalid("shard worker: aggregate is not two-phase");
  }
  LAFP_ASSIGN_OR_RETURN(df::DataFrame partial,
                        combiner.PartialAggregate(frame));
  LAFP_ASSIGN_OR_RETURN(std::string bytes, exec::SerializeFrame(partial));
  return Message{MsgType::kFrameData, std::move(bytes)};
}

Result<Message> HandlePutFrame(WorkerState* st, const Message& req) {
  WireReader r(req.payload);
  uint64_t handle = 0;
  if (!r.U64(&handle)) return r.Error("put handle");
  LAFP_ASSIGN_OR_RETURN(df::DataFrame frame,
                        exec::DeserializeFrame(r.Rest(), &st->tracker));
  const uint64_t rows = frame.num_rows();
  st->frames[handle] = std::move(frame);
  WireWriter w;
  w.U64(rows);
  return Message{MsgType::kOk, w.Take()};
}

Result<Message> HandleGetFrame(WorkerState* st, const Message& req) {
  WireReader r(req.payload);
  uint64_t handle = 0;
  if (!r.U64(&handle)) return r.Error("get handle");
  LAFP_ASSIGN_OR_RETURN(df::DataFrame frame, LookupFrame(st, handle));
  LAFP_ASSIGN_OR_RETURN(std::string bytes, exec::SerializeFrame(frame));
  return Message{MsgType::kFrameData, std::move(bytes)};
}

Result<Message> HandleFreeFrames(WorkerState* st, const Message& req) {
  WireReader r(req.payload);
  uint32_t n = 0;
  if (!r.U32(&n)) return r.Error("free count");
  if (static_cast<uint64_t>(n) * 8 > r.remaining()) return r.Error("frees");
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t handle = 0;
    if (!r.U64(&handle)) return r.Error("free handle");
    st->frames.erase(handle);  // freeing an unknown handle is a no-op
  }
  WireWriter w;
  w.U64(0);
  return Message{MsgType::kOk, w.Take()};
}

Result<Message> Dispatch(WorkerState* st, const Message& req) {
  switch (req.type) {
    case MsgType::kScan:
      return HandleScan(st, req);
    case MsgType::kExecOp:
      return HandleExecOp(st, req);
    case MsgType::kGroupByPartial:
      return HandleGroupByPartial(st, req);
    case MsgType::kPutFrame:
      return HandlePutFrame(st, req);
    case MsgType::kGetFrame:
      return HandleGetFrame(st, req);
    case MsgType::kFreeFrames:
      return HandleFreeFrames(st, req);
    default:
      return Status::Invalid("shard worker: unexpected message type " +
                             std::to_string(static_cast<uint32_t>(req.type)));
  }
}

}  // namespace

void WorkerMain(int fd, int worker_index) {
  // The fork copied the coordinator's fault state (thread-local injector
  // pointer and the global registry). Worker-side execution must not
  // consume coordinator fault budgets, so the copy is cleared before any
  // FaultPoint can run.
  FaultInjector::ResetForkedChild();
  WorkerState state;
  state.worker_index = worker_index;
  for (;;) {
    Result<Message> req = RecvMessage(fd);
    // EOF means the coordinator went away (shutdown or crash); exiting
    // without side effects is the whole cleanup story for a worker.
    if (!req.ok()) _exit(0);
    if (req->type == MsgType::kShutdown) _exit(0);
    Result<Message> reply = Dispatch(&state, *req);
    Message out = reply.ok()
                      ? std::move(*reply)
                      : Message{MsgType::kError,
                                EncodeErrorPayload(reply.status())};
    if (!SendMessage(fd, out.type, out.payload).ok()) _exit(0);
  }
}

}  // namespace lafp::shard
