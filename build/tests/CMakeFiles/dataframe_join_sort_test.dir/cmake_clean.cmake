file(REMOVE_RECURSE
  "CMakeFiles/dataframe_join_sort_test.dir/dataframe_join_sort_test.cc.o"
  "CMakeFiles/dataframe_join_sort_test.dir/dataframe_join_sort_test.cc.o.d"
  "dataframe_join_sort_test"
  "dataframe_join_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_join_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
