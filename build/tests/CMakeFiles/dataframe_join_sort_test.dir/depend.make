# Empty dependencies file for dataframe_join_sort_test.
# This may be replaced when dependencies are built.
