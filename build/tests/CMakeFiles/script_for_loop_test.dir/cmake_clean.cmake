file(REMOVE_RECURSE
  "CMakeFiles/script_for_loop_test.dir/script_for_loop_test.cc.o"
  "CMakeFiles/script_for_loop_test.dir/script_for_loop_test.cc.o.d"
  "script_for_loop_test"
  "script_for_loop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_for_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
