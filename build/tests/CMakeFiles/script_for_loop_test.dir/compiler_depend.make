# Empty compiler generated dependencies file for script_for_loop_test.
# This may be replaced when dependencies are built.
