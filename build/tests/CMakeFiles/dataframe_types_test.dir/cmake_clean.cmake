file(REMOVE_RECURSE
  "CMakeFiles/dataframe_types_test.dir/dataframe_types_test.cc.o"
  "CMakeFiles/dataframe_types_test.dir/dataframe_types_test.cc.o.d"
  "dataframe_types_test"
  "dataframe_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
