# Empty compiler generated dependencies file for dataframe_types_test.
# This may be replaced when dependencies are built.
