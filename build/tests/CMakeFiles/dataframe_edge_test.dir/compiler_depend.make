# Empty compiler generated dependencies file for dataframe_edge_test.
# This may be replaced when dependencies are built.
