file(REMOVE_RECURSE
  "CMakeFiles/dataframe_edge_test.dir/dataframe_edge_test.cc.o"
  "CMakeFiles/dataframe_edge_test.dir/dataframe_edge_test.cc.o.d"
  "dataframe_edge_test"
  "dataframe_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
