file(REMOVE_RECURSE
  "CMakeFiles/lazy_task_graph_test.dir/lazy_task_graph_test.cc.o"
  "CMakeFiles/lazy_task_graph_test.dir/lazy_task_graph_test.cc.o.d"
  "lazy_task_graph_test"
  "lazy_task_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_task_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
