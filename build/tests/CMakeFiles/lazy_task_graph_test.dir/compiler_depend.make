# Empty compiler generated dependencies file for lazy_task_graph_test.
# This may be replaced when dependencies are built.
