# Empty compiler generated dependencies file for dataframe_column_test.
# This may be replaced when dependencies are built.
