file(REMOVE_RECURSE
  "CMakeFiles/dataframe_column_test.dir/dataframe_column_test.cc.o"
  "CMakeFiles/dataframe_column_test.dir/dataframe_column_test.cc.o.d"
  "dataframe_column_test"
  "dataframe_column_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_column_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
