# Empty compiler generated dependencies file for script_rewriter_test.
# This may be replaced when dependencies are built.
