file(REMOVE_RECURSE
  "CMakeFiles/script_rewriter_test.dir/script_rewriter_test.cc.o"
  "CMakeFiles/script_rewriter_test.dir/script_rewriter_test.cc.o.d"
  "script_rewriter_test"
  "script_rewriter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
