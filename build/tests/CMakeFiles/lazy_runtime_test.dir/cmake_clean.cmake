file(REMOVE_RECURSE
  "CMakeFiles/lazy_runtime_test.dir/lazy_runtime_test.cc.o"
  "CMakeFiles/lazy_runtime_test.dir/lazy_runtime_test.cc.o.d"
  "lazy_runtime_test"
  "lazy_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
