# Empty dependencies file for lazy_runtime_test.
# This may be replaced when dependencies are built.
