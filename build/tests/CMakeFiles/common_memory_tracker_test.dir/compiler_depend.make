# Empty compiler generated dependencies file for common_memory_tracker_test.
# This may be replaced when dependencies are built.
