file(REMOVE_RECURSE
  "CMakeFiles/common_memory_tracker_test.dir/common_memory_tracker_test.cc.o"
  "CMakeFiles/common_memory_tracker_test.dir/common_memory_tracker_test.cc.o.d"
  "common_memory_tracker_test"
  "common_memory_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_memory_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
