file(REMOVE_RECURSE
  "CMakeFiles/script_interpreter_test.dir/script_interpreter_test.cc.o"
  "CMakeFiles/script_interpreter_test.dir/script_interpreter_test.cc.o.d"
  "script_interpreter_test"
  "script_interpreter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
