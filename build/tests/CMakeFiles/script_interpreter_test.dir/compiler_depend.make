# Empty compiler generated dependencies file for script_interpreter_test.
# This may be replaced when dependencies are built.
