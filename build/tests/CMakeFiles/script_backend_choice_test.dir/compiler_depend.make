# Empty compiler generated dependencies file for script_backend_choice_test.
# This may be replaced when dependencies are built.
