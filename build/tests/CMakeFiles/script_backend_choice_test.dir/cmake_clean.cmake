file(REMOVE_RECURSE
  "CMakeFiles/script_backend_choice_test.dir/script_backend_choice_test.cc.o"
  "CMakeFiles/script_backend_choice_test.dir/script_backend_choice_test.cc.o.d"
  "script_backend_choice_test"
  "script_backend_choice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_backend_choice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
