file(REMOVE_RECURSE
  "CMakeFiles/io_csv_edge_test.dir/io_csv_edge_test.cc.o"
  "CMakeFiles/io_csv_edge_test.dir/io_csv_edge_test.cc.o.d"
  "io_csv_edge_test"
  "io_csv_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_csv_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
