# Empty dependencies file for io_csv_edge_test.
# This may be replaced when dependencies are built.
