# Empty dependencies file for dataframe_test.
# This may be replaced when dependencies are built.
