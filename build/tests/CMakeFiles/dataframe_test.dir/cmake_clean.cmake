file(REMOVE_RECURSE
  "CMakeFiles/dataframe_test.dir/dataframe_test.cc.o"
  "CMakeFiles/dataframe_test.dir/dataframe_test.cc.o.d"
  "dataframe_test"
  "dataframe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
