# Empty dependencies file for exec_twophase_test.
# This may be replaced when dependencies are built.
