file(REMOVE_RECURSE
  "CMakeFiles/exec_twophase_test.dir/exec_twophase_test.cc.o"
  "CMakeFiles/exec_twophase_test.dir/exec_twophase_test.cc.o.d"
  "exec_twophase_test"
  "exec_twophase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_twophase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
