file(REMOVE_RECURSE
  "CMakeFiles/exec_backend_test.dir/exec_backend_test.cc.o"
  "CMakeFiles/exec_backend_test.dir/exec_backend_test.cc.o.d"
  "exec_backend_test"
  "exec_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
