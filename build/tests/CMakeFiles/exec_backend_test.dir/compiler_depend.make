# Empty compiler generated dependencies file for exec_backend_test.
# This may be replaced when dependencies are built.
