# Empty compiler generated dependencies file for dataframe_groupby_test.
# This may be replaced when dependencies are built.
