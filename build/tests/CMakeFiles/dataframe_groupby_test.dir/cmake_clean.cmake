file(REMOVE_RECURSE
  "CMakeFiles/dataframe_groupby_test.dir/dataframe_groupby_test.cc.o"
  "CMakeFiles/dataframe_groupby_test.dir/dataframe_groupby_test.cc.o.d"
  "dataframe_groupby_test"
  "dataframe_groupby_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_groupby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
