file(REMOVE_RECURSE
  "CMakeFiles/script_analysis_test.dir/script_analysis_test.cc.o"
  "CMakeFiles/script_analysis_test.dir/script_analysis_test.cc.o.d"
  "script_analysis_test"
  "script_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
