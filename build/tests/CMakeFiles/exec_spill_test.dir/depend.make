# Empty dependencies file for exec_spill_test.
# This may be replaced when dependencies are built.
