file(REMOVE_RECURSE
  "CMakeFiles/exec_spill_test.dir/exec_spill_test.cc.o"
  "CMakeFiles/exec_spill_test.dir/exec_spill_test.cc.o.d"
  "exec_spill_test"
  "exec_spill_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_spill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
