file(REMOVE_RECURSE
  "CMakeFiles/exec_dask_test.dir/exec_dask_test.cc.o"
  "CMakeFiles/exec_dask_test.dir/exec_dask_test.cc.o.d"
  "exec_dask_test"
  "exec_dask_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_dask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
