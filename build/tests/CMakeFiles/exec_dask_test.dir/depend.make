# Empty dependencies file for exec_dask_test.
# This may be replaced when dependencies are built.
