file(REMOVE_RECURSE
  "CMakeFiles/exec_modin_test.dir/exec_modin_test.cc.o"
  "CMakeFiles/exec_modin_test.dir/exec_modin_test.cc.o.d"
  "exec_modin_test"
  "exec_modin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_modin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
