file(REMOVE_RECURSE
  "CMakeFiles/common_hash_test.dir/common_hash_test.cc.o"
  "CMakeFiles/common_hash_test.dir/common_hash_test.cc.o.d"
  "common_hash_test"
  "common_hash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
