# Empty dependencies file for isin_concat_test.
# This may be replaced when dependencies are built.
