file(REMOVE_RECURSE
  "CMakeFiles/isin_concat_test.dir/isin_concat_test.cc.o"
  "CMakeFiles/isin_concat_test.dir/isin_concat_test.cc.o.d"
  "isin_concat_test"
  "isin_concat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isin_concat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
