# Empty dependencies file for dataframe_kernels_test.
# This may be replaced when dependencies are built.
