file(REMOVE_RECURSE
  "CMakeFiles/dataframe_kernels_test.dir/dataframe_kernels_test.cc.o"
  "CMakeFiles/dataframe_kernels_test.dir/dataframe_kernels_test.cc.o.d"
  "dataframe_kernels_test"
  "dataframe_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
