# Empty compiler generated dependencies file for script_codegen_property_test.
# This may be replaced when dependencies are built.
