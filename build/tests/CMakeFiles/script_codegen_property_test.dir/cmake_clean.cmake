file(REMOVE_RECURSE
  "CMakeFiles/script_codegen_property_test.dir/script_codegen_property_test.cc.o"
  "CMakeFiles/script_codegen_property_test.dir/script_codegen_property_test.cc.o.d"
  "script_codegen_property_test"
  "script_codegen_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_codegen_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
