# Empty dependencies file for integration_regression_test.
# This may be replaced when dependencies are built.
