file(REMOVE_RECURSE
  "CMakeFiles/integration_regression_test.dir/integration_regression_test.cc.o"
  "CMakeFiles/integration_regression_test.dir/integration_regression_test.cc.o.d"
  "integration_regression_test"
  "integration_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
