# Empty compiler generated dependencies file for script_frontend_test.
# This may be replaced when dependencies are built.
