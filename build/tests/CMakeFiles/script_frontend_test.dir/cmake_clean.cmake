file(REMOVE_RECURSE
  "CMakeFiles/script_frontend_test.dir/script_frontend_test.cc.o"
  "CMakeFiles/script_frontend_test.dir/script_frontend_test.cc.o.d"
  "script_frontend_test"
  "script_frontend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
