# Empty dependencies file for lazy_session_edge_test.
# This may be replaced when dependencies are built.
