# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lazy_session_edge_test.
