file(REMOVE_RECURSE
  "CMakeFiles/lazy_session_edge_test.dir/lazy_session_edge_test.cc.o"
  "CMakeFiles/lazy_session_edge_test.dir/lazy_session_edge_test.cc.o.d"
  "lazy_session_edge_test"
  "lazy_session_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_session_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
