file(REMOVE_RECURSE
  "CMakeFiles/taxi_analysis.dir/taxi_analysis.cpp.o"
  "CMakeFiles/taxi_analysis.dir/taxi_analysis.cpp.o.d"
  "taxi_analysis"
  "taxi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
