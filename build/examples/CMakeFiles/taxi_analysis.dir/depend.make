# Empty dependencies file for taxi_analysis.
# This may be replaced when dependencies are built.
