# Empty compiler generated dependencies file for backend_comparison.
# This may be replaced when dependencies are built.
