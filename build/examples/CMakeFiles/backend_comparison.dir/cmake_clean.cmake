file(REMOVE_RECURSE
  "CMakeFiles/backend_comparison.dir/backend_comparison.cpp.o"
  "CMakeFiles/backend_comparison.dir/backend_comparison.cpp.o.d"
  "backend_comparison"
  "backend_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
