file(REMOVE_RECURSE
  "CMakeFiles/script_pipeline.dir/script_pipeline.cpp.o"
  "CMakeFiles/script_pipeline.dir/script_pipeline.cpp.o.d"
  "script_pipeline"
  "script_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
