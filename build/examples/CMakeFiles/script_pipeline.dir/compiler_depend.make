# Empty compiler generated dependencies file for script_pipeline.
# This may be replaced when dependencies are built.
