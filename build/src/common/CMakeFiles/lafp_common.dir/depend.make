# Empty dependencies file for lafp_common.
# This may be replaced when dependencies are built.
