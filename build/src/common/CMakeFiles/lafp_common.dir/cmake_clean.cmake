file(REMOVE_RECURSE
  "CMakeFiles/lafp_common.dir/hash.cc.o"
  "CMakeFiles/lafp_common.dir/hash.cc.o.d"
  "CMakeFiles/lafp_common.dir/logging.cc.o"
  "CMakeFiles/lafp_common.dir/logging.cc.o.d"
  "CMakeFiles/lafp_common.dir/memory_tracker.cc.o"
  "CMakeFiles/lafp_common.dir/memory_tracker.cc.o.d"
  "CMakeFiles/lafp_common.dir/status.cc.o"
  "CMakeFiles/lafp_common.dir/status.cc.o.d"
  "CMakeFiles/lafp_common.dir/string_util.cc.o"
  "CMakeFiles/lafp_common.dir/string_util.cc.o.d"
  "CMakeFiles/lafp_common.dir/thread_pool.cc.o"
  "CMakeFiles/lafp_common.dir/thread_pool.cc.o.d"
  "liblafp_common.a"
  "liblafp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lafp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
