file(REMOVE_RECURSE
  "liblafp_common.a"
)
