# Empty dependencies file for lafp_optimizer.
# This may be replaced when dependencies are built.
