file(REMOVE_RECURSE
  "CMakeFiles/lafp_optimizer.dir/passes.cc.o"
  "CMakeFiles/lafp_optimizer.dir/passes.cc.o.d"
  "CMakeFiles/lafp_optimizer.dir/predicate.cc.o"
  "CMakeFiles/lafp_optimizer.dir/predicate.cc.o.d"
  "liblafp_optimizer.a"
  "liblafp_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lafp_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
