file(REMOVE_RECURSE
  "liblafp_optimizer.a"
)
