# Empty compiler generated dependencies file for lafp_lazy.
# This may be replaced when dependencies are built.
