
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lazy/fat_dataframe.cc" "src/lazy/CMakeFiles/lafp_lazy.dir/fat_dataframe.cc.o" "gcc" "src/lazy/CMakeFiles/lafp_lazy.dir/fat_dataframe.cc.o.d"
  "/root/repo/src/lazy/session.cc" "src/lazy/CMakeFiles/lafp_lazy.dir/session.cc.o" "gcc" "src/lazy/CMakeFiles/lafp_lazy.dir/session.cc.o.d"
  "/root/repo/src/lazy/task_graph.cc" "src/lazy/CMakeFiles/lafp_lazy.dir/task_graph.cc.o" "gcc" "src/lazy/CMakeFiles/lafp_lazy.dir/task_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/lafp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lafp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/lafp_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lafp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
