file(REMOVE_RECURSE
  "CMakeFiles/lafp_lazy.dir/fat_dataframe.cc.o"
  "CMakeFiles/lafp_lazy.dir/fat_dataframe.cc.o.d"
  "CMakeFiles/lafp_lazy.dir/session.cc.o"
  "CMakeFiles/lafp_lazy.dir/session.cc.o.d"
  "CMakeFiles/lafp_lazy.dir/task_graph.cc.o"
  "CMakeFiles/lafp_lazy.dir/task_graph.cc.o.d"
  "liblafp_lazy.a"
  "liblafp_lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lafp_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
