file(REMOVE_RECURSE
  "liblafp_lazy.a"
)
