# CMake generated Testfile for 
# Source directory: /root/repo/src/lazy
# Build directory: /root/repo/build/src/lazy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
