file(REMOVE_RECURSE
  "liblafp_exec.a"
)
