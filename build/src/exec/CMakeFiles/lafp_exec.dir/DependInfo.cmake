
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/agg_twophase.cc" "src/exec/CMakeFiles/lafp_exec.dir/agg_twophase.cc.o" "gcc" "src/exec/CMakeFiles/lafp_exec.dir/agg_twophase.cc.o.d"
  "/root/repo/src/exec/backend.cc" "src/exec/CMakeFiles/lafp_exec.dir/backend.cc.o" "gcc" "src/exec/CMakeFiles/lafp_exec.dir/backend.cc.o.d"
  "/root/repo/src/exec/dask_backend.cc" "src/exec/CMakeFiles/lafp_exec.dir/dask_backend.cc.o" "gcc" "src/exec/CMakeFiles/lafp_exec.dir/dask_backend.cc.o.d"
  "/root/repo/src/exec/eager_ops.cc" "src/exec/CMakeFiles/lafp_exec.dir/eager_ops.cc.o" "gcc" "src/exec/CMakeFiles/lafp_exec.dir/eager_ops.cc.o.d"
  "/root/repo/src/exec/modin_backend.cc" "src/exec/CMakeFiles/lafp_exec.dir/modin_backend.cc.o" "gcc" "src/exec/CMakeFiles/lafp_exec.dir/modin_backend.cc.o.d"
  "/root/repo/src/exec/op.cc" "src/exec/CMakeFiles/lafp_exec.dir/op.cc.o" "gcc" "src/exec/CMakeFiles/lafp_exec.dir/op.cc.o.d"
  "/root/repo/src/exec/pandas_backend.cc" "src/exec/CMakeFiles/lafp_exec.dir/pandas_backend.cc.o" "gcc" "src/exec/CMakeFiles/lafp_exec.dir/pandas_backend.cc.o.d"
  "/root/repo/src/exec/partition.cc" "src/exec/CMakeFiles/lafp_exec.dir/partition.cc.o" "gcc" "src/exec/CMakeFiles/lafp_exec.dir/partition.cc.o.d"
  "/root/repo/src/exec/spill.cc" "src/exec/CMakeFiles/lafp_exec.dir/spill.cc.o" "gcc" "src/exec/CMakeFiles/lafp_exec.dir/spill.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/lafp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lafp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/lafp_dataframe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
