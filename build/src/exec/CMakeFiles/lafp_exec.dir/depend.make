# Empty dependencies file for lafp_exec.
# This may be replaced when dependencies are built.
