file(REMOVE_RECURSE
  "CMakeFiles/lafp_exec.dir/agg_twophase.cc.o"
  "CMakeFiles/lafp_exec.dir/agg_twophase.cc.o.d"
  "CMakeFiles/lafp_exec.dir/backend.cc.o"
  "CMakeFiles/lafp_exec.dir/backend.cc.o.d"
  "CMakeFiles/lafp_exec.dir/dask_backend.cc.o"
  "CMakeFiles/lafp_exec.dir/dask_backend.cc.o.d"
  "CMakeFiles/lafp_exec.dir/eager_ops.cc.o"
  "CMakeFiles/lafp_exec.dir/eager_ops.cc.o.d"
  "CMakeFiles/lafp_exec.dir/modin_backend.cc.o"
  "CMakeFiles/lafp_exec.dir/modin_backend.cc.o.d"
  "CMakeFiles/lafp_exec.dir/op.cc.o"
  "CMakeFiles/lafp_exec.dir/op.cc.o.d"
  "CMakeFiles/lafp_exec.dir/pandas_backend.cc.o"
  "CMakeFiles/lafp_exec.dir/pandas_backend.cc.o.d"
  "CMakeFiles/lafp_exec.dir/partition.cc.o"
  "CMakeFiles/lafp_exec.dir/partition.cc.o.d"
  "CMakeFiles/lafp_exec.dir/spill.cc.o"
  "CMakeFiles/lafp_exec.dir/spill.cc.o.d"
  "liblafp_exec.a"
  "liblafp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lafp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
