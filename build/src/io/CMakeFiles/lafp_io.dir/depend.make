# Empty dependencies file for lafp_io.
# This may be replaced when dependencies are built.
