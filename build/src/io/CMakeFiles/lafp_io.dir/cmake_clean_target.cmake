file(REMOVE_RECURSE
  "liblafp_io.a"
)
