file(REMOVE_RECURSE
  "CMakeFiles/lafp_io.dir/csv.cc.o"
  "CMakeFiles/lafp_io.dir/csv.cc.o.d"
  "liblafp_io.a"
  "liblafp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lafp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
