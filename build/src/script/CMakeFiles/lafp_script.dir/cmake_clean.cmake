file(REMOVE_RECURSE
  "CMakeFiles/lafp_script.dir/analysis.cc.o"
  "CMakeFiles/lafp_script.dir/analysis.cc.o.d"
  "CMakeFiles/lafp_script.dir/analyze.cc.o"
  "CMakeFiles/lafp_script.dir/analyze.cc.o.d"
  "CMakeFiles/lafp_script.dir/ast_printer.cc.o"
  "CMakeFiles/lafp_script.dir/ast_printer.cc.o.d"
  "CMakeFiles/lafp_script.dir/backend_choice.cc.o"
  "CMakeFiles/lafp_script.dir/backend_choice.cc.o.d"
  "CMakeFiles/lafp_script.dir/cfg.cc.o"
  "CMakeFiles/lafp_script.dir/cfg.cc.o.d"
  "CMakeFiles/lafp_script.dir/codegen.cc.o"
  "CMakeFiles/lafp_script.dir/codegen.cc.o.d"
  "CMakeFiles/lafp_script.dir/interpreter.cc.o"
  "CMakeFiles/lafp_script.dir/interpreter.cc.o.d"
  "CMakeFiles/lafp_script.dir/lexer.cc.o"
  "CMakeFiles/lafp_script.dir/lexer.cc.o.d"
  "CMakeFiles/lafp_script.dir/lowering.cc.o"
  "CMakeFiles/lafp_script.dir/lowering.cc.o.d"
  "CMakeFiles/lafp_script.dir/model.cc.o"
  "CMakeFiles/lafp_script.dir/model.cc.o.d"
  "CMakeFiles/lafp_script.dir/parser.cc.o"
  "CMakeFiles/lafp_script.dir/parser.cc.o.d"
  "CMakeFiles/lafp_script.dir/rewriter.cc.o"
  "CMakeFiles/lafp_script.dir/rewriter.cc.o.d"
  "liblafp_script.a"
  "liblafp_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lafp_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
