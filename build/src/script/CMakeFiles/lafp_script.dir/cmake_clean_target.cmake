file(REMOVE_RECURSE
  "liblafp_script.a"
)
