# Empty compiler generated dependencies file for lafp_script.
# This may be replaced when dependencies are built.
