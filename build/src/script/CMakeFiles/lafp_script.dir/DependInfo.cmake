
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/script/analysis.cc" "src/script/CMakeFiles/lafp_script.dir/analysis.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/analysis.cc.o.d"
  "/root/repo/src/script/analyze.cc" "src/script/CMakeFiles/lafp_script.dir/analyze.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/analyze.cc.o.d"
  "/root/repo/src/script/ast_printer.cc" "src/script/CMakeFiles/lafp_script.dir/ast_printer.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/ast_printer.cc.o.d"
  "/root/repo/src/script/backend_choice.cc" "src/script/CMakeFiles/lafp_script.dir/backend_choice.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/backend_choice.cc.o.d"
  "/root/repo/src/script/cfg.cc" "src/script/CMakeFiles/lafp_script.dir/cfg.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/cfg.cc.o.d"
  "/root/repo/src/script/codegen.cc" "src/script/CMakeFiles/lafp_script.dir/codegen.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/codegen.cc.o.d"
  "/root/repo/src/script/interpreter.cc" "src/script/CMakeFiles/lafp_script.dir/interpreter.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/interpreter.cc.o.d"
  "/root/repo/src/script/lexer.cc" "src/script/CMakeFiles/lafp_script.dir/lexer.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/lexer.cc.o.d"
  "/root/repo/src/script/lowering.cc" "src/script/CMakeFiles/lafp_script.dir/lowering.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/lowering.cc.o.d"
  "/root/repo/src/script/model.cc" "src/script/CMakeFiles/lafp_script.dir/model.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/model.cc.o.d"
  "/root/repo/src/script/parser.cc" "src/script/CMakeFiles/lafp_script.dir/parser.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/parser.cc.o.d"
  "/root/repo/src/script/rewriter.cc" "src/script/CMakeFiles/lafp_script.dir/rewriter.cc.o" "gcc" "src/script/CMakeFiles/lafp_script.dir/rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lazy/CMakeFiles/lafp_lazy.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/lafp_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/lafp_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/lafp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lafp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/lafp_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lafp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
