file(REMOVE_RECURSE
  "CMakeFiles/lafp_meta.dir/metadata.cc.o"
  "CMakeFiles/lafp_meta.dir/metadata.cc.o.d"
  "liblafp_meta.a"
  "liblafp_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lafp_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
