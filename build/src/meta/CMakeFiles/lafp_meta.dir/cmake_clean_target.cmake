file(REMOVE_RECURSE
  "liblafp_meta.a"
)
