# Empty dependencies file for lafp_meta.
# This may be replaced when dependencies are built.
