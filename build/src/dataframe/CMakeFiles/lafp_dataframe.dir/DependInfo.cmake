
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataframe/column.cc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/column.cc.o" "gcc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/column.cc.o.d"
  "/root/repo/src/dataframe/dataframe.cc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/dataframe.cc.o" "gcc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/dataframe.cc.o.d"
  "/root/repo/src/dataframe/kernels_agg.cc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_agg.cc.o" "gcc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_agg.cc.o.d"
  "/root/repo/src/dataframe/kernels_arith.cc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_arith.cc.o" "gcc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_arith.cc.o.d"
  "/root/repo/src/dataframe/kernels_compare.cc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_compare.cc.o" "gcc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_compare.cc.o.d"
  "/root/repo/src/dataframe/kernels_datetime.cc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_datetime.cc.o" "gcc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_datetime.cc.o.d"
  "/root/repo/src/dataframe/kernels_join.cc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_join.cc.o" "gcc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_join.cc.o.d"
  "/root/repo/src/dataframe/kernels_sort.cc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_sort.cc.o" "gcc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/kernels_sort.cc.o.d"
  "/root/repo/src/dataframe/types.cc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/types.cc.o" "gcc" "src/dataframe/CMakeFiles/lafp_dataframe.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lafp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
