file(REMOVE_RECURSE
  "liblafp_dataframe.a"
)
