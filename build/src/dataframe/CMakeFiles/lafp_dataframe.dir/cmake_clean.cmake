file(REMOVE_RECURSE
  "CMakeFiles/lafp_dataframe.dir/column.cc.o"
  "CMakeFiles/lafp_dataframe.dir/column.cc.o.d"
  "CMakeFiles/lafp_dataframe.dir/dataframe.cc.o"
  "CMakeFiles/lafp_dataframe.dir/dataframe.cc.o.d"
  "CMakeFiles/lafp_dataframe.dir/kernels_agg.cc.o"
  "CMakeFiles/lafp_dataframe.dir/kernels_agg.cc.o.d"
  "CMakeFiles/lafp_dataframe.dir/kernels_arith.cc.o"
  "CMakeFiles/lafp_dataframe.dir/kernels_arith.cc.o.d"
  "CMakeFiles/lafp_dataframe.dir/kernels_compare.cc.o"
  "CMakeFiles/lafp_dataframe.dir/kernels_compare.cc.o.d"
  "CMakeFiles/lafp_dataframe.dir/kernels_datetime.cc.o"
  "CMakeFiles/lafp_dataframe.dir/kernels_datetime.cc.o.d"
  "CMakeFiles/lafp_dataframe.dir/kernels_join.cc.o"
  "CMakeFiles/lafp_dataframe.dir/kernels_join.cc.o.d"
  "CMakeFiles/lafp_dataframe.dir/kernels_sort.cc.o"
  "CMakeFiles/lafp_dataframe.dir/kernels_sort.cc.o.d"
  "CMakeFiles/lafp_dataframe.dir/types.cc.o"
  "CMakeFiles/lafp_dataframe.dir/types.cc.o.d"
  "liblafp_dataframe.a"
  "liblafp_dataframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lafp_dataframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
