# Empty compiler generated dependencies file for lafp_dataframe.
# This may be replaced when dependencies are built.
