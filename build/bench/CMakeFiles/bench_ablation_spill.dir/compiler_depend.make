# Empty compiler generated dependencies file for bench_ablation_spill.
# This may be replaced when dependencies are built.
