file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spill.dir/bench_ablation_spill.cc.o"
  "CMakeFiles/bench_ablation_spill.dir/bench_ablation_spill.cc.o.d"
  "bench_ablation_spill"
  "bench_ablation_spill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
