# Empty compiler generated dependencies file for bench_fig13_exec_time.
# This may be replaced when dependencies are built.
