# Empty compiler generated dependencies file for bench_calibrate.
# This may be replaced when dependencies are built.
