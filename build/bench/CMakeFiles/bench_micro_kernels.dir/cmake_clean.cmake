file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_kernels.dir/bench_micro_kernels.cc.o"
  "CMakeFiles/bench_micro_kernels.dir/bench_micro_kernels.cc.o.d"
  "bench_micro_kernels"
  "bench_micro_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
