file(REMOVE_RECURSE
  "CMakeFiles/bench_jit_overhead.dir/bench_jit_overhead.cc.o"
  "CMakeFiles/bench_jit_overhead.dir/bench_jit_overhead.cc.o.d"
  "bench_jit_overhead"
  "bench_jit_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jit_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
