# Empty dependencies file for bench_jit_overhead.
# This may be replaced when dependencies are built.
