file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_success.dir/bench_fig12_success.cc.o"
  "CMakeFiles/bench_fig12_success.dir/bench_fig12_success.cc.o.d"
  "bench_fig12_success"
  "bench_fig12_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
