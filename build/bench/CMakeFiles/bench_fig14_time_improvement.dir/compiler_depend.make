# Empty compiler generated dependencies file for bench_fig14_time_improvement.
# This may be replaced when dependencies are built.
