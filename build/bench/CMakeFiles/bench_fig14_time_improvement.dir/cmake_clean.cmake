file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_time_improvement.dir/bench_fig14_time_improvement.cc.o"
  "CMakeFiles/bench_fig14_time_improvement.dir/bench_fig14_time_improvement.cc.o.d"
  "bench_fig14_time_improvement"
  "bench_fig14_time_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_time_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
