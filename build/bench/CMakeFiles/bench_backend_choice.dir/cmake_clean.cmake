file(REMOVE_RECURSE
  "CMakeFiles/bench_backend_choice.dir/bench_backend_choice.cc.o"
  "CMakeFiles/bench_backend_choice.dir/bench_backend_choice.cc.o.d"
  "bench_backend_choice"
  "bench_backend_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backend_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
