# Empty dependencies file for bench_backend_choice.
# This may be replaced when dependencies are built.
