# Empty compiler generated dependencies file for bench_ablation_optimizations.
# This may be replaced when dependencies are built.
