# Empty compiler generated dependencies file for lafp_benchlib.
# This may be replaced when dependencies are built.
