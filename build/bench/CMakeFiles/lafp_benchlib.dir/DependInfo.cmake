
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/datagen.cc" "bench/CMakeFiles/lafp_benchlib.dir/datagen.cc.o" "gcc" "bench/CMakeFiles/lafp_benchlib.dir/datagen.cc.o.d"
  "/root/repo/bench/harness.cc" "bench/CMakeFiles/lafp_benchlib.dir/harness.cc.o" "gcc" "bench/CMakeFiles/lafp_benchlib.dir/harness.cc.o.d"
  "/root/repo/bench/programs.cc" "bench/CMakeFiles/lafp_benchlib.dir/programs.cc.o" "gcc" "bench/CMakeFiles/lafp_benchlib.dir/programs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/script/CMakeFiles/lafp_script.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/lafp_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/lazy/CMakeFiles/lafp_lazy.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/lafp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/lafp_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lafp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/lafp_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lafp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
