file(REMOVE_RECURSE
  "liblafp_benchlib.a"
)
