file(REMOVE_RECURSE
  "CMakeFiles/lafp_benchlib.dir/datagen.cc.o"
  "CMakeFiles/lafp_benchlib.dir/datagen.cc.o.d"
  "CMakeFiles/lafp_benchlib.dir/harness.cc.o"
  "CMakeFiles/lafp_benchlib.dir/harness.cc.o.d"
  "CMakeFiles/lafp_benchlib.dir/programs.cc.o"
  "CMakeFiles/lafp_benchlib.dir/programs.cc.o.d"
  "liblafp_benchlib.a"
  "liblafp_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lafp_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
